// Semantic data structure tests: builders, serialization round trips, and
// the timing analysis / delay balancing.
#include <gtest/gtest.h>

#include <cstdio>

#include "program/program.h"
#include "program/timing.h"

namespace nsc::prog {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;

arch::AlsId firstDoublet(const Machine& m) { return m.config().num_singlets; }

TEST(PipelineDiagramTest, UseAlsSizesFuVector) {
  Machine m;
  PipelineDiagram d;
  const AlsUse& singlet = d.useAls(m, 0);
  EXPECT_EQ(singlet.fu.size(), 1u);
  const AlsUse& doublet = d.useAls(m, firstDoublet(m));
  EXPECT_EQ(doublet.fu.size(), 2u);
  const AlsUse& triplet =
      d.useAls(m, firstDoublet(m) + m.config().num_doublets);
  EXPECT_EQ(triplet.fu.size(), 3u);
  // Idempotent.
  d.useAls(m, 0);
  EXPECT_EQ(d.als_uses.size(), 3u);
}

TEST(PipelineDiagramTest, ConnectMarksInputSelects) {
  Machine m;
  PipelineDiagram d;
  const arch::AlsId als = firstDoublet(m);
  const arch::FuId f0 = m.als(als).fus[0];
  const arch::FuId f1 = m.als(als).fus[1];
  d.useAls(m, als);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(f0, 0));
  EXPECT_EQ(d.fuUse(m, f0).in_a, arch::InputSelect::kSwitch);
  d.connect(m, Endpoint::fuOutput(f0), Endpoint::fuInput(f1, 0));
  EXPECT_EQ(d.fuUse(m, f1).in_a, arch::InputSelect::kChain);
  // Non-consecutive FU-to-FU goes through the switch.
  const arch::FuId other = m.als(als + 1).fus[0];
  d.useAls(m, als + 1);
  d.connect(m, Endpoint::fuOutput(f1), Endpoint::fuInput(other, 1));
  EXPECT_EQ(d.fuUse(m, other).in_b, arch::InputSelect::kSwitch);
}

TEST(PipelineDiagramTest, ConstAndAccumInputs) {
  Machine m;
  PipelineDiagram d;
  const arch::FuId f = m.als(firstDoublet(m)).fus[1];
  d.setFuOp(m, f, OpCode::kMax);
  d.setAccumInput(m, f, 1, -7.5);
  const FuUse& use = d.fuUse(m, f);
  EXPECT_EQ(use.in_b, arch::InputSelect::kFeedback);
  EXPECT_EQ(use.rf_mode, arch::RfMode::kAccum);
  EXPECT_EQ(use.rf_constant, -7.5);
}

TEST(PipelineDiagramTest, ConnectionQueries) {
  Machine m;
  PipelineDiagram d;
  d.useAls(m, firstDoublet(m));
  const arch::FuId f = m.als(firstDoublet(m)).fus[0];
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(f, 1));
  EXPECT_EQ(d.connectionsFrom(Endpoint::planeRead(0)).size(), 2u);
  EXPECT_TRUE(d.connectionTo(Endpoint::fuInput(f, 0)).has_value());
  EXPECT_FALSE(d.connectionTo(Endpoint::planeWrite(0)).has_value());
}

TEST(SerializationTest, EndpointRoundTrip) {
  for (const Endpoint e :
       {Endpoint::fuOutput(31), Endpoint::fuInput(7, 1), Endpoint::planeRead(15),
        Endpoint::planeWrite(0), Endpoint::cacheRead(9), Endpoint::cacheWrite(3),
        Endpoint::sdOutput(1, 2), Endpoint::sdInput(0)}) {
    const auto back = endpointFromJson(endpointToJson(e));
    ASSERT_TRUE(back.isOk()) << e.toString();
    EXPECT_EQ(back.value(), e);
  }
}

PipelineDiagram makeRichDiagram(const Machine& m) {
  PipelineDiagram d;
  d.name = "rich";
  d.comment = "everything populated";
  const arch::AlsId als = firstDoublet(m);
  const arch::FuId f0 = m.als(als).fus[0];
  const arch::FuId f1 = m.als(als).fus[1];
  d.setFuOp(m, f0, OpCode::kMul);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(f0, 0));
  d.setConstInput(m, f0, 1, 3.25);
  d.setFuOp(m, f1, OpCode::kMax);
  d.connect(m, Endpoint::fuOutput(f0), Endpoint::fuInput(f1, 0));
  d.setAccumInput(m, f1, 1, 0.0);
  d.connect(m, Endpoint::fuOutput(f1), Endpoint::planeWrite(2));
  d.connect(m, Endpoint::planeRead(1), Endpoint::sdInput(0));
  d.useSd(0, {0, 2, 5});
  d.dmaAt(Endpoint::planeRead(0)) = {"x", 10, 2, 50, 2, 100, 0, false};
  d.dmaAt(Endpoint::planeRead(1)) = {"y", 0, 1, 100, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(2)) = {"out", 0, 1, 1, 1, 0, 0, false};
  d.cond = CondLatch{f1, 2};
  d.seq = {arch::SeqOp::kBranchIf, 3, 2, 0};
  return d;
}

TEST(SerializationTest, DiagramRoundTrip) {
  Machine m;
  const PipelineDiagram d = makeRichDiagram(m);
  const auto back = PipelineDiagram::fromJson(d.toJson());
  ASSERT_TRUE(back.isOk()) << back.message();
  EXPECT_EQ(back.value(), d);
}

TEST(SerializationTest, ProgramRoundTripThroughText) {
  Machine m;
  Program p;
  p.name = "demo";
  p.pipelines.push_back(makeRichDiagram(m));
  PipelineDiagram halt;
  halt.name = "halt";
  halt.seq.op = arch::SeqOp::kHalt;
  p.pipelines.push_back(halt);

  const std::string text = p.toJson().dumpPretty();
  const auto parsed = common::Json::parse(text);
  ASSERT_TRUE(parsed.isOk());
  const auto back = Program::fromJson(parsed.value());
  ASSERT_TRUE(back.isOk()) << back.message();
  EXPECT_EQ(back.value(), p);
}

TEST(SerializationTest, ProgramFileRoundTrip) {
  Machine m;
  Program p;
  p.name = "file-demo";
  p.pipelines.push_back(makeRichDiagram(m));
  const std::string path = ::testing::TempDir() + "/nsc_program.json";
  ASSERT_TRUE(p.saveToFile(path).isOk());
  const auto back = Program::loadFromFile(path);
  ASSERT_TRUE(back.isOk()) << back.message();
  EXPECT_EQ(back.value(), p);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongHeader) {
  const auto parsed = common::Json::parse(R"({"format":"something-else"})");
  ASSERT_TRUE(parsed.isOk());
  EXPECT_FALSE(Program::fromJson(parsed.value()).isOk());
}

TEST(TimingTest, SimpleChainDepths) {
  Machine m;
  PipelineDiagram d;
  const arch::AlsId als = firstDoublet(m);
  const arch::FuId f0 = m.als(als).fus[0];
  d.setFuOp(m, f0, OpCode::kAdd);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(f0, 0));
  d.connect(m, Endpoint::planeRead(1), Endpoint::fuInput(f0, 1));
  d.connect(m, Endpoint::fuOutput(f0), Endpoint::planeWrite(2));
  const TimingResult t = analyzeTiming(m, d);
  ASSERT_TRUE(t.ok);
  EXPECT_TRUE(t.misaligned.empty());
  // read(0) -> hop(1) -> add(6) -> hop(1): write arrival at 8.
  EXPECT_EQ(t.time.at(Endpoint::planeWrite(2)),
            arch::opInfo(OpCode::kAdd).latency + 2);
}

TEST(TimingTest, MissingDriverReported) {
  Machine m;
  PipelineDiagram d;
  const arch::FuId f0 = m.als(firstDoublet(m)).fus[0];
  d.setFuOp(m, f0, OpCode::kAdd);
  prog::FuUse& use = d.fuUse(m, f0);
  use.in_a = arch::InputSelect::kSwitch;
  use.in_b = arch::InputSelect::kSwitch;
  d.connect(m, Endpoint::fuOutput(f0), Endpoint::planeWrite(0));
  const TimingResult t = analyzeTiming(m, d);
  EXPECT_FALSE(t.ok);
  EXPECT_FALSE(t.errors.empty());
}

TEST(TimingTest, BalanceInsertsExactGap) {
  Machine m;
  PipelineDiagram d;
  const arch::AlsId alsA = firstDoublet(m);
  const arch::AlsId alsB = alsA + 1;
  const arch::FuId slow = m.als(alsA).fus[0];  // div: latency 20
  const arch::FuId join = m.als(alsB).fus[0];
  d.setFuOp(m, slow, OpCode::kDiv);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(slow, 0));
  d.connect(m, Endpoint::planeRead(1), Endpoint::fuInput(slow, 1));
  d.setFuOp(m, join, OpCode::kAdd);
  d.connect(m, Endpoint::fuOutput(slow), Endpoint::fuInput(join, 0));
  d.connect(m, Endpoint::planeRead(2), Endpoint::fuInput(join, 1));
  d.connect(m, Endpoint::fuOutput(join), Endpoint::planeWrite(3));

  const TimingResult before = analyzeTiming(m, d);
  ASSERT_TRUE(before.ok);
  ASSERT_EQ(before.misaligned.size(), 1u);
  EXPECT_EQ(before.misaligned[0].fu, join);

  EXPECT_EQ(balanceDelays(m, d), 1);
  const FuUse& use = d.fuUse(m, join);
  EXPECT_EQ(use.rf_mode, arch::RfMode::kDelay);
  EXPECT_EQ(use.rf_delay_port, 1);
  // div latency plus the fu-output switch hop.
  EXPECT_EQ(use.rf_delay, arch::opInfo(OpCode::kDiv).latency + 1);
  EXPECT_TRUE(analyzeTiming(m, d).aligned());
}

TEST(TimingTest, BalanceHandlesDeepTrees) {
  // A left-leaning chain of adds: every join needs a successively larger
  // delay; balancing must converge and verify clean.
  Machine m;
  PipelineDiagram d;
  std::vector<arch::FuId> adders;
  const arch::AlsId first = firstDoublet(m);
  for (int i = 0; i < 4; ++i) {
    adders.push_back(m.als(first + i).fus[0]);
  }
  d.setFuOp(m, adders[0], OpCode::kAdd);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(adders[0], 0));
  d.connect(m, Endpoint::planeRead(1), Endpoint::fuInput(adders[0], 1));
  for (int i = 1; i < 4; ++i) {
    d.setFuOp(m, adders[static_cast<std::size_t>(i)], OpCode::kAdd);
    d.connect(m, Endpoint::fuOutput(adders[static_cast<std::size_t>(i - 1)]),
              Endpoint::fuInput(adders[static_cast<std::size_t>(i)], 0));
    d.connect(m, Endpoint::planeRead(i + 1),
              Endpoint::fuInput(adders[static_cast<std::size_t>(i)], 1));
  }
  d.connect(m, Endpoint::fuOutput(adders[3]), Endpoint::planeWrite(6));
  EXPECT_EQ(balanceDelays(m, d), 3);
  EXPECT_TRUE(analyzeTiming(m, d).aligned());
}

TEST(TimingTest, UnbalanceableWhenDelayExceedsHardware) {
  Machine m;
  PipelineDiagram d;
  const arch::AlsId alsA = firstDoublet(m);
  const arch::AlsId alsB = alsA + 1;
  // Three sequential divs = 60+ cycles of skew, beyond rf_max_delay of 63?
  // Use four to be sure: 4 * 21 > 63.
  arch::FuId prev = -1;
  for (int i = 0; i < 4; ++i) {
    const arch::FuId f = m.als(alsA + i).fus[0];
    d.setFuOp(m, f, OpCode::kDiv);
    if (i == 0) {
      d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
    } else {
      d.connect(m, Endpoint::fuOutput(prev), Endpoint::fuInput(f, 0));
    }
    d.setConstInput(m, f, 1, 2.0);
    prev = f;
  }
  const arch::FuId join = m.als(alsB + 4).fus[0];
  d.setFuOp(m, join, OpCode::kAdd);
  d.connect(m, Endpoint::fuOutput(prev), Endpoint::fuInput(join, 0));
  d.connect(m, Endpoint::planeRead(1), Endpoint::fuInput(join, 1));
  d.connect(m, Endpoint::fuOutput(join), Endpoint::planeWrite(2));
  EXPECT_EQ(balanceDelays(m, d), -1);
}

TEST(TimingTest, SdTapsContributeNoStructuralSkew) {
  Machine m;
  PipelineDiagram d;
  const arch::FuId f = m.als(firstDoublet(m)).fus[0];
  d.connect(m, Endpoint::planeRead(0), Endpoint::sdInput(0));
  d.useSd(0, {0, 7});
  d.setFuOp(m, f, OpCode::kSub);
  d.connect(m, Endpoint::sdOutput(0, 0), Endpoint::fuInput(f, 0));
  d.connect(m, Endpoint::sdOutput(0, 1), Endpoint::fuInput(f, 1));
  d.connect(m, Endpoint::fuOutput(f), Endpoint::planeWrite(1));
  const TimingResult t = analyzeTiming(m, d);
  ASSERT_TRUE(t.ok);
  EXPECT_TRUE(t.misaligned.empty()) << "tap delays are element shifts, not skew";
}

}  // namespace
}  // namespace nsc::prog
