#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/bitvector.h"
#include "common/env.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace nsc::common {
namespace {

TEST(EnvTest, ParseIntIsStrict) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_EQ(parseInt("+9"), 9);
  EXPECT_EQ(parseInt("0"), 0);
  // Everything std::atoi would half-accept is refused whole.
  for (const char* bad : {"", " 8", "8 ", "8x", "x8", "0x10", "1.5", "-",
                          "+", "99999999999999999999999"}) {
    EXPECT_FALSE(parseInt(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(EnvTest, EnvIntRangeChecksAndWarnsOncePerVariable) {
  resetEnvWarnings();
  ::unsetenv("NSC_TEST_ENV_INT");
  // Unset is not a misconfiguration: no value, no warning.
  EXPECT_FALSE(envInt("NSC_TEST_ENV_INT", 1, 100).has_value());
  EXPECT_EQ(envWarningCount(), 0u);

  ::setenv("NSC_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(envInt("NSC_TEST_ENV_INT", 1, 100), 42);
  EXPECT_EQ(envWarningCount(), 0u);

  // Malformed: fallback plus exactly one warning, even when re-read.
  ::setenv("NSC_TEST_ENV_INT", "junk", 1);
  EXPECT_FALSE(envInt("NSC_TEST_ENV_INT", 1, 100).has_value());
  EXPECT_FALSE(envInt("NSC_TEST_ENV_INT", 1, 100).has_value());
  EXPECT_EQ(envWarningCount(), 1u);

  // Out of range is the same misconfiguration class as unparseable.
  resetEnvWarnings();
  ::setenv("NSC_TEST_ENV_INT", "1000", 1);
  EXPECT_FALSE(envInt("NSC_TEST_ENV_INT", 1, 100).has_value());
  EXPECT_EQ(envWarningCount(), 1u);

  ::unsetenv("NSC_TEST_ENV_INT");
}

TEST(BitVectorTest, SetAndGetWithinOneWord) {
  BitVector bv(64);
  bv.setField(3, 8, 0xAB);
  EXPECT_EQ(bv.field(3, 8), 0xABu);
  EXPECT_EQ(bv.field(0, 3), 0u);
  EXPECT_EQ(bv.field(11, 8), 0u);
}

TEST(BitVectorTest, FieldStraddlingWordBoundary) {
  BitVector bv(128);
  bv.setField(60, 16, 0xBEEF);
  EXPECT_EQ(bv.field(60, 16), 0xBEEFu);
  // Neighbours untouched.
  EXPECT_EQ(bv.field(44, 16), 0u);
  EXPECT_EQ(bv.field(76, 16), 0u);
}

TEST(BitVectorTest, OverwriteClearsPreviousValue) {
  BitVector bv(96);
  bv.setField(40, 12, 0xFFF);
  bv.setField(40, 12, 0x005);
  EXPECT_EQ(bv.field(40, 12), 0x5u);
}

TEST(BitVectorTest, ValueMaskedToFieldWidth) {
  BitVector bv(32);
  bv.setField(0, 4, 0xFF);
  EXPECT_EQ(bv.field(0, 4), 0xFu);
  EXPECT_EQ(bv.field(4, 4), 0u);
}

TEST(BitVectorTest, SixtyFourBitField) {
  BitVector bv(200);
  const std::uint64_t v = 0x0123456789ABCDEFull;
  bv.setField(70, 64, v);
  EXPECT_EQ(bv.field(70, 64), v);
}

TEST(BitVectorTest, BitAccessorsAndPopcount) {
  BitVector bv(80);
  bv.setBit(0, true);
  bv.setBit(79, true);
  bv.setBit(40, true);
  EXPECT_TRUE(bv.bit(0));
  EXPECT_TRUE(bv.bit(79));
  EXPECT_FALSE(bv.bit(1));
  EXPECT_EQ(bv.popcount(), 3u);
  bv.setBit(40, false);
  EXPECT_EQ(bv.popcount(), 2u);
}

TEST(BitVectorTest, HexRoundTrip) {
  BitVector bv(77);
  bv.setField(0, 64, 0xDEADBEEFCAFEF00Dull);
  bv.setField(64, 13, 0x1A2B);
  const std::string hex = bv.toHex();
  const BitVector back = BitVector::fromHex(hex, 77);
  EXPECT_EQ(back, bv);
}

TEST(BitVectorTest, OutOfRangeThrows) {
  BitVector bv(16);
  EXPECT_THROW(bv.setField(10, 8, 1), std::out_of_range);
  EXPECT_THROW((void)bv.field(16, 1), std::out_of_range);
}

TEST(BitVectorTest, AllZeroAndClear) {
  BitVector bv(40);
  EXPECT_TRUE(bv.allZero());
  bv.setField(33, 3, 5);
  EXPECT_FALSE(bv.allZero());
  bv.clear();
  EXPECT_TRUE(bv.allZero());
}

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").value().isNull());
  EXPECT_EQ(Json::parse("true").value().asBool(), true);
  EXPECT_EQ(Json::parse("-42").value().asInt(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e3").value().asDouble(), 2500.0);
  EXPECT_EQ(Json::parse("\"hi\\n\"").value().asString(), "hi\n");
}

TEST(JsonTest, ParseNested) {
  const auto parsed = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
  ASSERT_TRUE(parsed.isOk()) << parsed.message();
  const Json& j = parsed.value();
  EXPECT_EQ(j.at("a").asArray().size(), 3u);
  EXPECT_EQ(j.at("a").asArray()[2].at("b").asString(), "c");
  EXPECT_TRUE(j.at("d").asObject().empty());
}

TEST(JsonTest, DumpParseRoundTrip) {
  JsonObject obj;
  obj["name"] = "pipeline 3";
  obj["count"] = std::int64_t{512};
  obj["ratio"] = 0.125;
  obj["flags"] = JsonArray{Json(true), Json(false), Json(nullptr)};
  const Json original{std::move(obj)};
  const auto reparsed = Json::parse(original.dump());
  ASSERT_TRUE(reparsed.isOk()) << reparsed.message();
  EXPECT_EQ(reparsed.value(), original);
  const auto reparsed_pretty = Json::parse(original.dumpPretty());
  ASSERT_TRUE(reparsed_pretty.isOk());
  EXPECT_EQ(reparsed_pretty.value(), original);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("{").isOk());
  EXPECT_FALSE(Json::parse("[1,]").isOk());
  EXPECT_FALSE(Json::parse("\"unterminated").isOk());
  EXPECT_FALSE(Json::parse("12 34").isOk());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").isOk());
}

TEST(JsonTest, TypedGettersWithDefaults) {
  const Json j = Json::parse(R"({"n": 7, "s": "x", "b": true})").value();
  EXPECT_EQ(j.getInt("n"), 7);
  EXPECT_EQ(j.getInt("missing", -1), -1);
  EXPECT_EQ(j.getString("s"), "x");
  EXPECT_EQ(j.getString("missing", "d"), "d");
  EXPECT_TRUE(j.getBool("b"));
  EXPECT_EQ(j.getInt("s", 9), 9);  // wrong type falls back
}

TEST(JsonTest, EscapedStringsSurviveRoundTrip) {
  const Json j{std::string("a\"b\\c\nd\te")};
  EXPECT_EQ(Json::parse(j.dump()).value().asString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, NonFiniteDoublesRoundTripExplicitly) {
  const double inf = std::numeric_limits<double>::infinity();
  // Serialization emits explicit tokens, never printf's unparseable
  // "nan"/"inf" text.
  EXPECT_EQ(Json(std::nan("")).dump(), "NaN");
  EXPECT_EQ(Json(inf).dump(), "Infinity");
  EXPECT_EQ(Json(-inf).dump(), "-Infinity");

  const auto nan_parsed = Json::parse("NaN");
  ASSERT_TRUE(nan_parsed.isOk()) << nan_parsed.message();
  EXPECT_TRUE(std::isnan(nan_parsed.value().asDouble()));
  EXPECT_EQ(Json::parse("Infinity").value().asDouble(), inf);
  EXPECT_EQ(Json::parse("-Infinity").value().asDouble(), -inf);
  EXPECT_EQ(Json::parse("+Infinity").value().asDouble(), inf);

  // Embedded in a document: the round trip preserves the value class.
  JsonObject obj;
  obj["lo"] = -inf;
  obj["hi"] = inf;
  obj["bad"] = std::nan("");
  obj["fine"] = 0.5;
  const Json original{std::move(obj)};
  const auto reparsed = Json::parse(original.dump());
  ASSERT_TRUE(reparsed.isOk()) << reparsed.message();
  EXPECT_EQ(reparsed.value().at("lo").asDouble(), -inf);
  EXPECT_EQ(reparsed.value().at("hi").asDouble(), inf);
  EXPECT_TRUE(std::isnan(reparsed.value().at("bad").asDouble()));
  EXPECT_EQ(reparsed.value().at("fine").asDouble(), 0.5);
  // NaN != NaN, so compare the canonical dumps, not the documents.
  EXPECT_EQ(Json::parse(original.dump()).value().dump(), original.dump());
}

TEST(JsonTest, NonFiniteTokensRejectTrailingGarbage) {
  EXPECT_FALSE(Json::parse("NaNx").isOk());
  EXPECT_FALSE(Json::parse("Nan").isOk());
  EXPECT_FALSE(Json::parse("Infinit").isOk());
  EXPECT_FALSE(Json::parse("-Inf").isOk());
  EXPECT_FALSE(Json::parse("Infinity7").isOk());
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::ok().isOk());
  const Status e = Status::error("boom");
  EXPECT_FALSE(e.isOk());
  EXPECT_EQ(e.message(), "boom");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.isOk());
  EXPECT_EQ(ok.value(), 42);
  const auto err = Result<int>::error("nope");
  EXPECT_FALSE(err.isOk());
  EXPECT_EQ(err.message(), "nope");
  EXPECT_EQ(err.valueOr(7), 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, RangesRespectBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StringsTest, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_TRUE(startsWith("pipeline-3", "pipe"));
  EXPECT_FALSE(startsWith("pi", "pipe"));
}

TEST(StringsTest, FormatAndBytes) {
  EXPECT_EQ(strFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(bytesHuman(128ull * 1024 * 1024), "128 MB");
  EXPECT_EQ(bytesHuman(2ull * 1024 * 1024 * 1024), "2 GB");
  EXPECT_EQ(bytesHuman(8192), "8 KB");
  EXPECT_EQ(bytesHuman(100), "100 B");
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
}

}  // namespace
}  // namespace nsc::common
