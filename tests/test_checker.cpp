// Checker rule tests: every architectural restriction the paper's editor
// enforces, exercised legal-and-illegal.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "program/timing.h"

namespace nsc::check {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : checker_(machine_) {}

  arch::AlsId doublet() const { return machine_.config().num_singlets; }
  arch::FuId fu(arch::AlsId als, int slot) const {
    return machine_.als(als).fus[static_cast<std::size_t>(slot)];
  }

  Machine machine_;
  Checker checker_;
  prog::PipelineDiagram d_;
};

bool hasRule(const DiagnosticList& list, Rule rule) {
  for (const Diagnostic& d : list.all()) {
    if (d.rule == rule) return true;
  }
  return false;
}

TEST_F(CheckerTest, LegalConnectionAccepted) {
  EXPECT_TRUE(checker_.canConnect(d_, Endpoint::planeRead(0),
                                  Endpoint::fuInput(fu(doublet(), 0), 0)));
}

TEST_F(CheckerTest, EndpointRoleEnforced) {
  // Input pad cannot source; output pad cannot receive.
  auto diag = checker_.checkConnection(d_, Endpoint::fuInput(0, 0),
                                       Endpoint::planeWrite(1));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kEndpointRole);
  diag = checker_.checkConnection(d_, Endpoint::planeRead(0),
                                  Endpoint::fuOutput(0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kEndpointRole);
}

TEST_F(CheckerTest, EndpointRangeEnforced) {
  auto diag = checker_.checkConnection(d_, Endpoint::planeRead(99),
                                       Endpoint::fuInput(0, 0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kEndpointRange);
  diag = checker_.checkConnection(d_, Endpoint::planeRead(0),
                                  Endpoint::fuInput(77, 0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kEndpointRange);
  diag = checker_.checkConnection(d_, Endpoint::sdOutput(0, 9),
                                  Endpoint::fuInput(0, 0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kEndpointRange);
}

TEST_F(CheckerTest, InputAlreadyDrivenRefused) {
  const Endpoint in = Endpoint::fuInput(fu(doublet(), 0), 0);
  d_.useAls(machine_, doublet());
  d_.connect(machine_, Endpoint::planeRead(0), in);
  const auto diag = checker_.checkConnection(d_, Endpoint::planeRead(1), in);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kInputAlreadyDriven);
}

TEST_F(CheckerTest, SelfLoopThroughSwitchRefused) {
  const arch::FuId f = fu(doublet(), 0);
  const auto diag = checker_.checkConnection(d_, Endpoint::fuOutput(f),
                                             Endpoint::fuInput(f, 1));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kSelfLoop);
}

TEST_F(CheckerTest, PlaneContentionRefused) {
  // The paper's canonical example: one unit's output routed to a plane,
  // then a second unit's output to the same plane must be refused.
  const arch::FuId f0 = fu(doublet(), 0);
  const arch::FuId f1 = fu(doublet() + 1, 0);
  d_.useAls(machine_, doublet());
  d_.useAls(machine_, doublet() + 1);
  d_.connect(machine_, Endpoint::fuOutput(f0), Endpoint::planeWrite(5));
  // Same plane, write side occupied: a read stream on plane 5 is also a
  // second stream.
  auto diag = checker_.checkConnection(d_, Endpoint::planeRead(5),
                                       Endpoint::fuInput(f1, 0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kPlaneContention);
  // A different plane is fine.
  EXPECT_TRUE(checker_.canConnect(d_, Endpoint::planeRead(6),
                                  Endpoint::fuInput(f1, 0)));
}

TEST_F(CheckerTest, PlaneReadFanoutIsOneStream) {
  // Multiple consumers of one plane-read stream do not violate contention.
  const arch::FuId f0 = fu(doublet(), 0);
  const arch::FuId f1 = fu(doublet() + 1, 0);
  d_.useAls(machine_, doublet());
  d_.useAls(machine_, doublet() + 1);
  d_.connect(machine_, Endpoint::planeRead(2), Endpoint::fuInput(f0, 0));
  EXPECT_TRUE(checker_.canConnect(d_, Endpoint::planeRead(2),
                                  Endpoint::fuInput(f1, 0)));
}

TEST_F(CheckerTest, FanoutLimitEnforced) {
  d_.useAls(machine_, doublet());
  const Endpoint src = Endpoint::planeRead(0);
  const int limit = machine_.config().max_switch_fanout;
  int added = 0;
  // Fan out to FU inputs across many ALSs until the limit.
  for (arch::AlsId als = 0; als < machine_.config().numAls() && added < limit;
       ++als) {
    for (int slot = 0; slot < alsFuCount(machine_.als(als).kind) && added < limit;
         ++slot) {
      d_.useAls(machine_, als);
      d_.connect(machine_, src, Endpoint::fuInput(fu(als, slot), 0));
      ++added;
    }
  }
  const auto diag = checker_.checkConnection(
      d_, src, Endpoint::fuInput(fu(machine_.config().numAls() - 1, 0), 1));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kFanoutLimit);
}

TEST_F(CheckerTest, CombinationalCycleRefused) {
  const arch::FuId f0 = fu(doublet(), 0);
  const arch::FuId f1 = fu(doublet() + 1, 0);
  d_.useAls(machine_, doublet());
  d_.useAls(machine_, doublet() + 1);
  d_.connect(machine_, Endpoint::fuOutput(f0), Endpoint::fuInput(f1, 0));
  const auto diag = checker_.checkConnection(d_, Endpoint::fuOutput(f1),
                                             Endpoint::fuInput(f0, 0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kCycle);
}

TEST_F(CheckerTest, CycleThroughShiftDelayRefused) {
  const arch::FuId f0 = fu(doublet(), 0);
  d_.useAls(machine_, doublet());
  d_.useSd(0, {0});
  d_.connect(machine_, Endpoint::sdOutput(0, 0), Endpoint::fuInput(f0, 0));
  const auto diag = checker_.checkConnection(d_, Endpoint::fuOutput(f0),
                                             Endpoint::sdInput(0));
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kCycle);
}

TEST_F(CheckerTest, LegalTargetsMatchCanConnect) {
  d_.useAls(machine_, doublet());
  const Endpoint src = Endpoint::planeRead(3);
  const auto targets = checker_.legalTargets(d_, src);
  EXPECT_FALSE(targets.empty());
  for (const Endpoint& t : targets) {
    EXPECT_TRUE(checker_.canConnect(d_, src, t)) << t.toString();
  }
  // And everything not listed is refused.
  std::size_t refused = 0;
  for (const Endpoint& t : machine_.destinations()) {
    if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
      EXPECT_FALSE(checker_.canConnect(d_, src, t));
      ++refused;
    }
  }
  EXPECT_EQ(targets.size() + refused, machine_.destinations().size());
}

TEST_F(CheckerTest, LegalOpsRespectCapabilities) {
  // Slot 0 of a doublet: fp + integer, no min/max.
  const auto ops0 = checker_.legalOps(fu(doublet(), 0));
  EXPECT_NE(std::find(ops0.begin(), ops0.end(), OpCode::kIAdd), ops0.end());
  EXPECT_EQ(std::find(ops0.begin(), ops0.end(), OpCode::kMax), ops0.end());
  // Slot 1: fp + min/max, no integer.
  const auto ops1 = checker_.legalOps(fu(doublet(), 1));
  EXPECT_NE(std::find(ops1.begin(), ops1.end(), OpCode::kMax), ops1.end());
  EXPECT_EQ(std::find(ops1.begin(), ops1.end(), OpCode::kIAdd), ops1.end());
}

TEST_F(CheckerTest, CapabilityViolationCaught) {
  const arch::FuId f = fu(doublet(), 0);  // no min/max circuitry
  d_.setFuOp(machine_, f, OpCode::kMax);
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  d_.connect(machine_, Endpoint::planeRead(1), Endpoint::fuInput(f, 1));
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kCapability));
}

TEST_F(CheckerTest, ArityMismatchCaught) {
  const arch::FuId f = fu(doublet(), 0);
  d_.setFuOp(machine_, f, OpCode::kAdd);  // binary, but only one input wired
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kArity));
}

TEST_F(CheckerTest, MissingDriverCaught) {
  const arch::FuId f = fu(doublet(), 0);
  d_.setFuOp(machine_, f, OpCode::kAdd);
  prog::FuUse& use = d_.fuUse(machine_, f);
  use.in_a = arch::InputSelect::kSwitch;  // claimed wired, no connection
  use.in_b = arch::InputSelect::kSwitch;
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kMissingDriver));
}

TEST_F(CheckerTest, BypassViolationCaught) {
  const arch::AlsId als = doublet();
  prog::AlsUse& use = d_.useAls(machine_, als);
  use.bypass = true;
  d_.setFuOp(machine_, fu(als, 1), OpCode::kAbs);  // bypassed slot programmed
  d_.connect(machine_, Endpoint::planeRead(0),
             Endpoint::fuInput(fu(als, 1), 0));
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kBypass));
}

TEST_F(CheckerTest, BypassOnNonDoubletRefused) {
  prog::AlsUse& use = d_.useAls(machine_, 0);  // singlet
  use.bypass = true;
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kBypass));
}

TEST_F(CheckerTest, DmaMissingCaught) {
  const arch::FuId f = fu(doublet(), 0);
  d_.setFuOp(machine_, f, OpCode::kAbs);
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  d_.connect(machine_, Endpoint::fuOutput(f), Endpoint::planeWrite(1));
  // No DMA specs at all.
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kDmaMissing));
}

TEST_F(CheckerTest, DmaRangeChecks) {
  const prog::DmaSpec in_range{"", 0, 1, 64, 1, 0, 0, false};
  EXPECT_FALSE(
      checker_.checkDma(d_, Endpoint::planeRead(0), in_range).has_value());

  // Runs past the end of the plane.
  prog::DmaSpec overrun = in_range;
  overrun.base = machine_.config().planeWords() - 10;
  auto diag = checker_.checkDma(d_, Endpoint::planeRead(0), overrun);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kDmaRange);

  // Negative stride running below zero.
  prog::DmaSpec negative{"", 5, -1, 64, 1, 0, 0, false};
  diag = checker_.checkDma(d_, Endpoint::planeRead(0), negative);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kDmaRange);

  // Two-level transfer overrunning via stride2.
  prog::DmaSpec rect{"", 0, 1, 8, 1u << 22, 1 << 21, 0, false};
  diag = checker_.checkDma(d_, Endpoint::planeRead(0), rect);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kDmaRange);

  // Zero-length vector.
  prog::DmaSpec empty{"", 0, 1, 0, 1, 0, 0, false};
  diag = checker_.checkDma(d_, Endpoint::planeRead(0), empty);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kDmaMissing);

  // Cache: two-level transfers are a plane feature.
  prog::DmaSpec cache_rect{"", 0, 1, 8, 2, 16, 0, false};
  diag = checker_.checkDma(d_, Endpoint::cacheRead(0), cache_rect);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kDmaRange);
}

TEST_F(CheckerTest, CacheBufferRules) {
  prog::DmaSpec bad_buffer{"", 0, 1, 8, 1, 0, 5, false};
  auto diag = checker_.checkDma(d_, Endpoint::cacheRead(0), bad_buffer);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kCacheBuffer);

  // Read and fill sides must agree on the active buffer.
  d_.dmaAt(Endpoint::cacheRead(3)) = {"", 0, 1, 8, 1, 0, 0, false};
  prog::DmaSpec fill{"", 0, 1, 8, 1, 0, 1, false};
  diag = checker_.checkDma(d_, Endpoint::cacheWrite(3), fill);
  ASSERT_TRUE(diag.has_value());
  EXPECT_EQ(diag->rule, Rule::kCacheBuffer);
}

TEST_F(CheckerTest, StreamLengthRules) {
  const arch::FuId f = fu(doublet(), 0);
  d_.setFuOp(machine_, f, OpCode::kAdd);
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  d_.connect(machine_, Endpoint::planeRead(1), Endpoint::fuInput(f, 1));
  d_.connect(machine_, Endpoint::fuOutput(f), Endpoint::planeWrite(2));
  d_.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 64, 1, 0, 0, false};
  d_.dmaAt(Endpoint::planeRead(1)) = {"", 0, 1, 32, 1, 0, 0, false};  // != 64
  d_.dmaAt(Endpoint::planeWrite(2)) = {"", 0, 1, 100, 1, 0, 0, false}; // > 64
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kStreamLength));
}

TEST_F(CheckerTest, ShiftDelayRules) {
  // Taps wired but unit not configured.
  const arch::FuId f = fu(doublet(), 0);
  d_.setFuOp(machine_, f, OpCode::kAbs);
  d_.connect(machine_, Endpoint::sdOutput(0, 0), Endpoint::fuInput(f, 0));
  DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kSdConfig));

  // Configured but no input stream.
  prog::PipelineDiagram d2;
  d2.useSd(0, {0, 1});
  diags = checker_.checkDiagram(d2);
  EXPECT_TRUE(hasRule(diags, Rule::kMissingDriver));

  // Too many taps / delay out of range.
  prog::PipelineDiagram d3;
  d3.useSd(0, {0, 1, 2, 3, 4});
  diags = checker_.checkDiagram(d3);
  EXPECT_TRUE(hasRule(diags, Rule::kSdConfig));
  prog::PipelineDiagram d4;
  d4.useSd(0, {9999});
  diags = checker_.checkDiagram(d4);
  EXPECT_TRUE(hasRule(diags, Rule::kSdConfig));
}

TEST_F(CheckerTest, FeedbackWithoutAccumCaught) {
  const arch::FuId f = fu(doublet(), 1);
  d_.setFuOp(machine_, f, OpCode::kMax);
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  prog::FuUse& use = d_.fuUse(machine_, f);
  use.in_b = arch::InputSelect::kFeedback;  // but rf_mode stays kOff
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kFeedbackMode));
}

TEST_F(CheckerTest, RfDelayRangeChecked) {
  EXPECT_FALSE(checker_.checkRfDelay(0).has_value());
  EXPECT_FALSE(
      checker_.checkRfDelay(machine_.config().rf_max_delay).has_value());
  EXPECT_TRUE(checker_.checkRfDelay(-1).has_value());
  EXPECT_TRUE(
      checker_.checkRfDelay(machine_.config().rf_max_delay + 1).has_value());
}

TEST_F(CheckerTest, TimingMisalignmentReportedWhenUnbalanced) {
  // mul feeding one add input while the other comes straight from memory:
  // without delay balancing the checker must flag the skew.
  const arch::AlsId als = doublet();
  const arch::FuId mul = fu(als, 0);
  const arch::FuId add = fu(als, 1);
  d_.setFuOp(machine_, mul, OpCode::kMul);
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d_.setConstInput(machine_, mul, 1, 2.0);
  d_.setFuOp(machine_, add, OpCode::kAdd);
  d_.connect(machine_, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d_.connect(machine_, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d_.connect(machine_, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  d_.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 8, 1, 0, 0, false};
  d_.dmaAt(Endpoint::planeRead(1)) = {"", 0, 1, 8, 1, 0, 0, false};
  d_.dmaAt(Endpoint::planeWrite(2)) = {"", 0, 1, 8, 1, 0, 0, false};

  DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kTimingAlignment));

  // After balancing, the diagram is clean.
  EXPECT_GE(prog::balanceDelays(machine_, d_), 1);
  diags = checker_.checkDiagram(d_);
  EXPECT_FALSE(diags.hasErrors()) << diags.format();
}

TEST_F(CheckerTest, CondSourceMustBeActive) {
  d_.cond = prog::CondLatch{fu(doublet(), 0), 0};  // FU not enabled
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kCondSource));
}

TEST_F(CheckerTest, SeqTargetBoundsChecked) {
  prog::Program p;
  prog::PipelineDiagram& a = p.append("a");
  a.seq = {arch::SeqOp::kJump, 7, 0, 0};  // out of range
  const DiagnosticList diags = checker_.checkProgram(p);
  EXPECT_TRUE(hasRule(diags, Rule::kSeqTarget));
}

TEST_F(CheckerTest, FallOffEndWarns) {
  prog::Program p;
  p.append("only");  // seq = kNext by default
  const DiagnosticList diags = checker_.checkProgram(p);
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(hasRule(diags, Rule::kSeqTarget));
  EXPECT_EQ(diags.warningCount(), diags.all().size());
}

TEST_F(CheckerTest, WarningsForUnusedResources) {
  d_.useAls(machine_, 0);  // placed, never programmed
  const arch::FuId f = fu(doublet(), 0);
  d_.setFuOp(machine_, f, OpCode::kAbs);
  d_.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(f, 0));
  d_.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 8, 1, 0, 0, false};
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kUnusedAls));
  EXPECT_TRUE(hasRule(diags, Rule::kDanglingOutput));
}

TEST_F(CheckerTest, AlsDuplicatePlacementCaught) {
  prog::AlsUse use;
  use.als = doublet();
  use.fu.resize(2);
  d_.als_uses.push_back(use);
  d_.als_uses.push_back(use);
  const DiagnosticList diags = checker_.checkDiagram(d_);
  EXPECT_TRUE(hasRule(diags, Rule::kAlsDuplicate));
}

TEST_F(CheckerTest, RulePhasesPartitionTheCatalogue) {
  int edit = 0, generate = 0;
  for (int r = 0; r <= static_cast<int>(Rule::kMissingDriver); ++r) {
    const Rule rule = static_cast<Rule>(r);
    EXPECT_NE(std::string(ruleName(rule)), "?");
    EXPECT_GT(std::string(ruleProse(rule)).size(), 10u);
    (rulePhase(rule) == CheckPhase::kEditTime ? edit : generate) += 1;
  }
  EXPECT_GT(edit, 5);
  EXPECT_GT(generate, 5);
}

}  // namespace
}  // namespace nsc::check
