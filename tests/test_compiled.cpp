// Golden cycle-exactness tests for the compiled execution engine.
//
// The compiled engine (sim/compiled_exec.cpp) must be indistinguishable
// from the legacy per-cycle interpreter (NodeSim::execute): identical
// per-instruction cycles/flops/hazards, identical fu_launches, identical
// memory-plane and cache contents, identical trace frames, identical error
// behavior.  These tests run the same executables through both engines —
// NodeOptions::use_compiled selects the engine — and compare everything
// observable, on the paper's Figure-11 Jacobi workload and on targeted
// corner cases (condition latch, accumulator drain, timeout, DMA faults).
#include <gtest/gtest.h>

#include <vector>

#include "arch/machine.h"
#include "cfd/jacobi_program.h"
#include "cfd/poisson.h"
#include "microcode/generator.h"
#include "program/program.h"
#include "sim/compiled.h"
#include "sim/hypercube.h"
#include "sim/node.h"
#include "sim/verify.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;
using sim::NodeSim;

sim::NodeSim::Options legacyOptions() {
  sim::NodeSim::Options options;
  options.use_compiled = false;
  return options;
}

// Asserts that two runs match in every stat the simulator reports.
void expectIdenticalRuns(const sim::RunStats& legacy,
                         const sim::RunStats& compiled) {
  EXPECT_EQ(legacy.error, compiled.error);
  EXPECT_EQ(legacy.error_message, compiled.error_message);
  EXPECT_EQ(legacy.fault, compiled.fault);
  EXPECT_EQ(legacy.halted, compiled.halted);
  EXPECT_EQ(legacy.total_cycles, compiled.total_cycles);
  EXPECT_EQ(legacy.total_flops, compiled.total_flops);
  EXPECT_EQ(legacy.total_hazards, compiled.total_hazards);
  EXPECT_EQ(legacy.instructions_executed, compiled.instructions_executed);
  EXPECT_EQ(legacy.fu_launches, compiled.fu_launches);
  ASSERT_EQ(legacy.trace.size(), compiled.trace.size());
  for (std::size_t i = 0; i < legacy.trace.size(); ++i) {
    const sim::InstrStats& a = legacy.trace[i];
    const sim::InstrStats& b = compiled.trace[i];
    EXPECT_EQ(a.instruction, b.instruction) << "trace entry " << i;
    EXPECT_EQ(a.name, b.name) << "trace entry " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "trace entry " << i << " (" << a.name << ")";
    EXPECT_EQ(a.flops, b.flops) << "trace entry " << i << " (" << a.name << ")";
    EXPECT_EQ(a.hazards, b.hazards)
        << "trace entry " << i << " (" << a.name << ")";
    EXPECT_EQ(a.error, b.error) << "trace entry " << i;
    EXPECT_EQ(a.error_message, b.error_message) << "trace entry " << i;
    EXPECT_EQ(a.fault, b.fault) << "trace entry " << i;
  }
}

void expectIdenticalMemory(const Machine& machine, const NodeSim& legacy,
                           const NodeSim& compiled, std::uint64_t plane_words) {
  const arch::MachineConfig& cfg = machine.config();
  for (arch::PlaneId p = 0; p < cfg.num_memory_planes; ++p) {
    EXPECT_EQ(legacy.readPlane(p, 0, plane_words),
              compiled.readPlane(p, 0, plane_words))
        << "plane " << p;
  }
  std::vector<double> legacy_cache(cfg.cacheWords());
  std::vector<double> compiled_cache(cfg.cacheWords());
  for (arch::CacheId c = 0; c < cfg.num_caches; ++c) {
    for (int buf = 0; buf < cfg.cache_buffers; ++buf) {
      legacy.readCacheInto(c, buf, 0, legacy_cache);
      compiled.readCacheInto(c, buf, 0, compiled_cache);
      EXPECT_EQ(legacy_cache, compiled_cache)
          << "cache " << c << " buffer " << buf;
    }
  }
}

// Runs the Figure-11 Jacobi workload through both engines and compares
// everything observable.  Parameterized over the build options so the
// convergence pipeline (condition latch + accumulator + branches) and the
// fixed-sweep pipeline (pure blocked steady state) are both covered.
void runJacobiGolden(cfd::JacobiBuildOptions options) {
  const Machine machine(options.restricted
                            ? arch::MachineConfig::restrictedSubset()
                            : arch::MachineConfig{});
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(
      options.grid.nx, options.grid.ny, options.grid.nz);

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim legacy(machine, legacyOptions());
  NodeSim compiled(machine);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  jacobi.load(legacy, problem);
  jacobi.load(compiled, problem);

  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_FALSE(legacy_run.error) << legacy_run.error_message;

  expectIdenticalRuns(legacy_run, compiled_run);
  const std::uint64_t words =
      static_cast<std::uint64_t>(options.grid.N()) +
      2 * static_cast<std::uint64_t>(jacobi.layout().pad);
  expectIdenticalMemory(machine, legacy, compiled, words);
  EXPECT_EQ(jacobi.residual(legacy), jacobi.residual(compiled));
  EXPECT_EQ(legacy.pc(), compiled.pc());
  EXPECT_EQ(legacy.halted(), compiled.halted());
  for (int reg = 0; reg < 4; ++reg) {
    EXPECT_EQ(legacy.cond(reg), compiled.cond(reg)) << "cond reg " << reg;
  }
}

TEST(CompiledGolden, Figure11JacobiConvergenceMode) {
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = true;
  options.tol = 1e-3;
  runJacobiGolden(options);
}

TEST(CompiledGolden, Figure11JacobiFixedSweeps) {
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 6;
  runJacobiGolden(options);
}

TEST(CompiledGolden, RestrictedSubsetModel) {
  cfd::JacobiBuildOptions options;
  options.grid = {6, 6, 6};
  options.h = 1.0 / 5.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 4;
  options.restricted = true;
  runJacobiGolden(options);
}

// Read-only instruction (no write engines): completion goes through the
// drain counter, which the compiled engine advances analytically inside
// steady-state blocks — the accumulated residual, the cycle count, and the
// latched condition must all match the interpreter's per-cycle accounting.
TEST(CompiledGolden, ReadOnlyDrainWithAccumulatorAndLatch) {
  const Machine machine;
  const int n = 200;  // long enough that blocked stepping engages
  prog::Program p;
  prog::PipelineDiagram& d = p.append("reduce");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId acc = machine.als(als).fus[1];  // min/max capable slot
  d.setFuOp(machine, acc, OpCode::kMax);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(acc, 0));
  d.setAccumInput(machine, acc, 1, 0.0);
  d.cond = prog::CondLatch{acc, 2};
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, n, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim legacy(machine, legacyOptions());
  NodeSim compiled(machine);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  legacy.writePlane(0, 0, test::iota(n, 0.25, 0.25));
  compiled.writePlane(0, 0, test::iota(n, 0.25, 0.25));
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_FALSE(legacy_run.error) << legacy_run.error_message;
  expectIdenticalRuns(legacy_run, compiled_run);
  EXPECT_EQ(legacy.cond(2), compiled.cond(2));
  EXPECT_TRUE(compiled.cond(2));  // max = 50 > 0.5
}

// The visual debugger consumes per-cycle trace frames; both engines must
// emit identical streams (instruction, cycle, and every source token).
TEST(CompiledGolden, TraceFramesMatch) {
  const Machine machine;
  const int n = 24;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId mul = machine.als(als).fus[0];
  const arch::FuId add = machine.als(als).fus[1];
  d.setFuOp(machine, mul, OpCode::kMul);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine, mul, 1, 3.0);
  d.setFuOp(machine, add, OpCode::kAdd);
  d.connect(machine, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(machine, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(machine, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeRead(1),
                           Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = d.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
  }
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  const auto runTraced = [&](bool use_compiled) {
    sim::NodeSim::Options options;
    options.use_compiled = use_compiled;
    NodeSim node(machine, options);
    node.load(gen.exe);
    node.writePlane(0, 0, test::iota(n, 1.0, 0.5));
    node.writePlane(1, 0, test::iota(n, -2.0, 0.125));
    std::vector<sim::TraceFrame> frames;
    node.setTraceSink(
        [&frames](const sim::TraceFrame& f) { frames.push_back(f); });
    const sim::RunStats run = node.run();
    EXPECT_FALSE(run.error) << run.error_message;
    return frames;
  };

  const std::vector<sim::TraceFrame> legacy = runTraced(false);
  const std::vector<sim::TraceFrame> compiled = runTraced(true);
  ASSERT_EQ(legacy.size(), compiled.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].instruction, compiled[i].instruction) << "frame " << i;
    EXPECT_EQ(legacy[i].cycle, compiled[i].cycle) << "frame " << i;
    ASSERT_EQ(legacy[i].source_tokens.size(), compiled[i].source_tokens.size());
    for (std::size_t t = 0; t < legacy[i].source_tokens.size(); ++t) {
      const sim::Token& a = legacy[i].source_tokens[t];
      const sim::Token& b = compiled[i].source_tokens[t];
      EXPECT_EQ(a.value, b.value) << "frame " << i << " token " << t;
      EXPECT_EQ(a.valid, b.valid) << "frame " << i << " token " << t;
      EXPECT_EQ(a.last, b.last) << "frame " << i << " token " << t;
      EXPECT_EQ(a.index, b.index) << "frame " << i << " token " << t;
    }
  }
}

// A DMA pattern that provably walks past the simulated plane capacity must
// fault identically: detected at compile time for the compiled engine, at
// engine setup for the interpreter, with the same message.
TEST(CompiledGolden, DmaCapacityFaultMatches) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("overrun");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec spec;
  spec.base = 0;
  spec.stride = 1;
  spec.count = machine.config().sim_plane_words + 1;
  d.dmaAt(Endpoint::planeRead(0)) = spec;
  d.dmaAt(Endpoint::planeWrite(1)) = spec;
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim legacy(machine, legacyOptions());
  NodeSim compiled(machine);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_TRUE(legacy_run.error);
  expectIdenticalRuns(legacy_run, compiled_run);
}

// An instruction that cannot complete (write engine expecting more tokens
// than the pipeline delivers) must time out with identical stats.
TEST(CompiledGolden, TimeoutMatches) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("starved");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec read;
  read.base = 0;
  read.stride = 1;
  read.count = 4;
  prog::DmaSpec write = read;
  write.count = 8;  // four tokens will never arrive
  d.dmaAt(Endpoint::planeRead(0)) = read;
  d.dmaAt(Endpoint::planeWrite(1)) = write;
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  // The checker (correctly) rejects the starved stream; bypass it — the
  // point is that both engines time out identically on bad microcode.
  mc::GenerateOptions gen_options;
  gen_options.run_checker = false;
  const mc::GenerateResult gen = generator.generate(p, gen_options);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  sim::NodeSim::Options legacy_options = legacyOptions();
  legacy_options.max_cycles_per_instruction = 500;
  sim::NodeSim::Options compiled_options;
  compiled_options.max_cycles_per_instruction = 500;
  NodeSim legacy(machine, legacy_options);
  NodeSim compiled(machine, compiled_options);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_TRUE(legacy_run.error);
  EXPECT_EQ(legacy_run.trace.back().cycles, 500u);
  expectIdenticalRuns(legacy_run, compiled_run);
}

// Adaptive steady-state blocks: a verified program runs with the
// per-instruction proven window (larger than the legacy fixed 64 on the
// Figure-11 sweep), and the choice of block length is unobservable — the
// interpreter, the compiled engine pinned to 64-cycle blocks, and the
// compiled engine with adaptive blocks agree on every stat, every memory
// word, and every trace entry.
TEST(CompiledGolden, AdaptiveSteadyBlocksBitIdenticalToFixed64) {
  const Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 6;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(
      options.grid.nx, options.grid.ny, options.grid.nz);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // The workload must actually exercise the adaptive path: the compiled
  // image verifies clean and at least one instruction proves a steady
  // window beyond the legacy fixed block.
  const auto program = sim::CompiledProgram::compile(machine, gen.exe);
  ASSERT_NE(program, nullptr);
  ASSERT_NE(program->verify, nullptr);
  EXPECT_TRUE(program->verify->clean()) << program->verify->format();
  std::uint32_t widest = 0;
  for (const auto& ci : program->instrs) widest = std::max(widest, ci.steady_window);
  EXPECT_GT(widest, sim::kFallbackSteadyBlock);

  sim::NodeSim::Options fixed64;
  fixed64.steady_block_override = 64;
  NodeSim legacy(machine, legacyOptions());
  NodeSim pinned(machine, fixed64);
  NodeSim adaptive(machine);
  for (NodeSim* node : {&legacy, &pinned, &adaptive}) {
    node->load(gen.exe);
    jacobi.load(*node, problem);
  }
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats pinned_run = pinned.run();
  const sim::RunStats adaptive_run = adaptive.run();
  ASSERT_FALSE(legacy_run.error) << legacy_run.error_message;

  expectIdenticalRuns(legacy_run, pinned_run);
  expectIdenticalRuns(legacy_run, adaptive_run);
  const std::uint64_t words =
      static_cast<std::uint64_t>(options.grid.N()) +
      2 * static_cast<std::uint64_t>(jacobi.layout().pad);
  expectIdenticalMemory(machine, legacy, adaptive, words);
  expectIdenticalMemory(machine, pinned, adaptive, words);
  EXPECT_EQ(jacobi.residual(pinned), jacobi.residual(adaptive));
}

// SPMD sharing: loadAll compiles once and every node aliases the same
// immutable image; the executable fingerprint survives the handoff.
TEST(CompiledProgram, SharedAcrossHypercubeNodes) {
  const Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {6, 6, 6};
  options.h = 0.2;
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  const cfd::JacobiProgram jacobi(machine, options);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  sim::HypercubeSystem system(machine, 3);
  system.loadAll(gen.exe);
  const auto& image = system.node(0).program();
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->fingerprint, gen.exe.fingerprint());
  for (int n = 1; n < system.numNodes(); ++n) {
    EXPECT_EQ(system.node(n).program().get(), image.get())
        << "node " << n << " holds a private program copy";
  }

  // ... and a re-generated identical program fingerprints identically,
  // while a different program does not.
  EXPECT_EQ(generator.generate(jacobi.program()).exe.fingerprint(),
            gen.exe.fingerprint());
  cfd::JacobiBuildOptions other = options;
  other.fixed_sweeps = 4;
  const cfd::JacobiProgram jacobi2(machine, other);
  EXPECT_NE(generator.generate(jacobi2.program()).exe.fingerprint(),
            gen.exe.fingerprint());
}

}  // namespace
}  // namespace nsc
