// Golden cycle-exactness tests for the compiled execution engine.
//
// The compiled engine (sim/compiled_exec.cpp) must be indistinguishable
// from the legacy per-cycle interpreter (NodeSim::execute): identical
// per-instruction cycles/flops/hazards, identical fu_launches, identical
// memory-plane and cache contents, identical trace frames, identical error
// behavior.  These tests run the same executables through both engines —
// NodeOptions::use_compiled selects the engine — and compare everything
// observable, on the paper's Figure-11 Jacobi workload and on targeted
// corner cases (condition latch, accumulator drain, timeout, DMA faults).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine.h"
#include "cfd/jacobi_program.h"
#include "cfd/poisson.h"
#include "microcode/generator.h"
#include "program/program.h"
#include "sim/batch.h"
#include "sim/compiled.h"
#include "sim/hypercube.h"
#include "sim/node.h"
#include "sim/verify.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;
using sim::NodeSim;

sim::NodeSim::Options legacyOptions() {
  sim::NodeSim::Options options;
  options.use_compiled = false;
  return options;
}

// Asserts that two runs match in every stat the simulator reports.
void expectIdenticalRuns(const sim::RunStats& legacy,
                         const sim::RunStats& compiled) {
  EXPECT_EQ(legacy.error, compiled.error);
  EXPECT_EQ(legacy.error_message, compiled.error_message);
  EXPECT_EQ(legacy.fault, compiled.fault);
  EXPECT_EQ(legacy.halted, compiled.halted);
  EXPECT_EQ(legacy.total_cycles, compiled.total_cycles);
  EXPECT_EQ(legacy.total_flops, compiled.total_flops);
  EXPECT_EQ(legacy.total_hazards, compiled.total_hazards);
  EXPECT_EQ(legacy.instructions_executed, compiled.instructions_executed);
  EXPECT_EQ(legacy.fu_launches, compiled.fu_launches);
  ASSERT_EQ(legacy.trace.size(), compiled.trace.size());
  for (std::size_t i = 0; i < legacy.trace.size(); ++i) {
    const sim::InstrStats& a = legacy.trace[i];
    const sim::InstrStats& b = compiled.trace[i];
    EXPECT_EQ(a.instruction, b.instruction) << "trace entry " << i;
    EXPECT_EQ(a.name, b.name) << "trace entry " << i;
    EXPECT_EQ(a.cycles, b.cycles) << "trace entry " << i << " (" << a.name << ")";
    EXPECT_EQ(a.flops, b.flops) << "trace entry " << i << " (" << a.name << ")";
    EXPECT_EQ(a.hazards, b.hazards)
        << "trace entry " << i << " (" << a.name << ")";
    EXPECT_EQ(a.error, b.error) << "trace entry " << i;
    EXPECT_EQ(a.error_message, b.error_message) << "trace entry " << i;
    EXPECT_EQ(a.fault, b.fault) << "trace entry " << i;
  }
}

void expectIdenticalMemory(const Machine& machine, const NodeSim& legacy,
                           const NodeSim& compiled, std::uint64_t plane_words) {
  const arch::MachineConfig& cfg = machine.config();
  for (arch::PlaneId p = 0; p < cfg.num_memory_planes; ++p) {
    EXPECT_EQ(legacy.readPlane(p, 0, plane_words),
              compiled.readPlane(p, 0, plane_words))
        << "plane " << p;
  }
  std::vector<double> legacy_cache(cfg.cacheWords());
  std::vector<double> compiled_cache(cfg.cacheWords());
  for (arch::CacheId c = 0; c < cfg.num_caches; ++c) {
    for (int buf = 0; buf < cfg.cache_buffers; ++buf) {
      legacy.readCacheInto(c, buf, 0, legacy_cache);
      compiled.readCacheInto(c, buf, 0, compiled_cache);
      EXPECT_EQ(legacy_cache, compiled_cache)
          << "cache " << c << " buffer " << buf;
    }
  }
}

// Runs the Figure-11 Jacobi workload through both engines and compares
// everything observable.  Parameterized over the build options so the
// convergence pipeline (condition latch + accumulator + branches) and the
// fixed-sweep pipeline (pure blocked steady state) are both covered.
void runJacobiGolden(cfd::JacobiBuildOptions options) {
  const Machine machine(options.restricted
                            ? arch::MachineConfig::restrictedSubset()
                            : arch::MachineConfig{});
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(
      options.grid.nx, options.grid.ny, options.grid.nz);

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim legacy(machine, legacyOptions());
  NodeSim compiled(machine);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  jacobi.load(legacy, problem);
  jacobi.load(compiled, problem);

  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_FALSE(legacy_run.error) << legacy_run.error_message;

  expectIdenticalRuns(legacy_run, compiled_run);
  const std::uint64_t words =
      static_cast<std::uint64_t>(options.grid.N()) +
      2 * static_cast<std::uint64_t>(jacobi.layout().pad);
  expectIdenticalMemory(machine, legacy, compiled, words);
  EXPECT_EQ(jacobi.residual(legacy), jacobi.residual(compiled));
  EXPECT_EQ(legacy.pc(), compiled.pc());
  EXPECT_EQ(legacy.halted(), compiled.halted());
  for (int reg = 0; reg < 4; ++reg) {
    EXPECT_EQ(legacy.cond(reg), compiled.cond(reg)) << "cond reg " << reg;
  }
}

TEST(CompiledGolden, Figure11JacobiConvergenceMode) {
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = true;
  options.tol = 1e-3;
  runJacobiGolden(options);
}

TEST(CompiledGolden, Figure11JacobiFixedSweeps) {
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 6;
  runJacobiGolden(options);
}

TEST(CompiledGolden, RestrictedSubsetModel) {
  cfd::JacobiBuildOptions options;
  options.grid = {6, 6, 6};
  options.h = 1.0 / 5.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 4;
  options.restricted = true;
  runJacobiGolden(options);
}

// Read-only instruction (no write engines): completion goes through the
// drain counter, which the compiled engine advances analytically inside
// steady-state blocks — the accumulated residual, the cycle count, and the
// latched condition must all match the interpreter's per-cycle accounting.
TEST(CompiledGolden, ReadOnlyDrainWithAccumulatorAndLatch) {
  const Machine machine;
  const int n = 200;  // long enough that blocked stepping engages
  prog::Program p;
  prog::PipelineDiagram& d = p.append("reduce");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId acc = machine.als(als).fus[1];  // min/max capable slot
  d.setFuOp(machine, acc, OpCode::kMax);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(acc, 0));
  d.setAccumInput(machine, acc, 1, 0.0);
  d.cond = prog::CondLatch{acc, 2};
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, n, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim legacy(machine, legacyOptions());
  NodeSim compiled(machine);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  legacy.writePlane(0, 0, test::iota(n, 0.25, 0.25));
  compiled.writePlane(0, 0, test::iota(n, 0.25, 0.25));
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_FALSE(legacy_run.error) << legacy_run.error_message;
  expectIdenticalRuns(legacy_run, compiled_run);
  EXPECT_EQ(legacy.cond(2), compiled.cond(2));
  EXPECT_TRUE(compiled.cond(2));  // max = 50 > 0.5
}

// The visual debugger consumes per-cycle trace frames; both engines must
// emit identical streams (instruction, cycle, and every source token).
TEST(CompiledGolden, TraceFramesMatch) {
  const Machine machine;
  const int n = 24;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId mul = machine.als(als).fus[0];
  const arch::FuId add = machine.als(als).fus[1];
  d.setFuOp(machine, mul, OpCode::kMul);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine, mul, 1, 3.0);
  d.setFuOp(machine, add, OpCode::kAdd);
  d.connect(machine, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(machine, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(machine, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeRead(1),
                           Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = d.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
  }
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  const auto runTraced = [&](bool use_compiled) {
    sim::NodeSim::Options options;
    options.use_compiled = use_compiled;
    NodeSim node(machine, options);
    node.load(gen.exe);
    node.writePlane(0, 0, test::iota(n, 1.0, 0.5));
    node.writePlane(1, 0, test::iota(n, -2.0, 0.125));
    std::vector<sim::TraceFrame> frames;
    node.setTraceSink(
        [&frames](const sim::TraceFrame& f) { frames.push_back(f); });
    const sim::RunStats run = node.run();
    EXPECT_FALSE(run.error) << run.error_message;
    return frames;
  };

  const std::vector<sim::TraceFrame> legacy = runTraced(false);
  const std::vector<sim::TraceFrame> compiled = runTraced(true);
  ASSERT_EQ(legacy.size(), compiled.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].instruction, compiled[i].instruction) << "frame " << i;
    EXPECT_EQ(legacy[i].cycle, compiled[i].cycle) << "frame " << i;
    ASSERT_EQ(legacy[i].source_tokens.size(), compiled[i].source_tokens.size());
    for (std::size_t t = 0; t < legacy[i].source_tokens.size(); ++t) {
      const sim::Token& a = legacy[i].source_tokens[t];
      const sim::Token& b = compiled[i].source_tokens[t];
      EXPECT_EQ(a.value, b.value) << "frame " << i << " token " << t;
      EXPECT_EQ(a.valid, b.valid) << "frame " << i << " token " << t;
      EXPECT_EQ(a.last, b.last) << "frame " << i << " token " << t;
      EXPECT_EQ(a.index, b.index) << "frame " << i << " token " << t;
    }
  }
}

// A DMA pattern that provably walks past the simulated plane capacity must
// fault identically: detected at compile time for the compiled engine, at
// engine setup for the interpreter, with the same message.
TEST(CompiledGolden, DmaCapacityFaultMatches) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("overrun");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec spec;
  spec.base = 0;
  spec.stride = 1;
  spec.count = machine.config().sim_plane_words + 1;
  d.dmaAt(Endpoint::planeRead(0)) = spec;
  d.dmaAt(Endpoint::planeWrite(1)) = spec;
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim legacy(machine, legacyOptions());
  NodeSim compiled(machine);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_TRUE(legacy_run.error);
  expectIdenticalRuns(legacy_run, compiled_run);
}

// An instruction that cannot complete (write engine expecting more tokens
// than the pipeline delivers) must time out with identical stats.
TEST(CompiledGolden, TimeoutMatches) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("starved");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec read;
  read.base = 0;
  read.stride = 1;
  read.count = 4;
  prog::DmaSpec write = read;
  write.count = 8;  // four tokens will never arrive
  d.dmaAt(Endpoint::planeRead(0)) = read;
  d.dmaAt(Endpoint::planeWrite(1)) = write;
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  // The checker (correctly) rejects the starved stream; bypass it — the
  // point is that both engines time out identically on bad microcode.
  mc::GenerateOptions gen_options;
  gen_options.run_checker = false;
  const mc::GenerateResult gen = generator.generate(p, gen_options);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  sim::NodeSim::Options legacy_options = legacyOptions();
  legacy_options.max_cycles_per_instruction = 500;
  sim::NodeSim::Options compiled_options;
  compiled_options.max_cycles_per_instruction = 500;
  NodeSim legacy(machine, legacy_options);
  NodeSim compiled(machine, compiled_options);
  legacy.load(gen.exe);
  compiled.load(gen.exe);
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats compiled_run = compiled.run();
  ASSERT_TRUE(legacy_run.error);
  EXPECT_EQ(legacy_run.trace.back().cycles, 500u);
  expectIdenticalRuns(legacy_run, compiled_run);
}

// Adaptive steady-state blocks: a verified program runs with the
// per-instruction proven window (larger than the legacy fixed 64 on the
// Figure-11 sweep), and the choice of block length is unobservable — the
// interpreter, the compiled engine pinned to 64-cycle blocks, and the
// compiled engine with adaptive blocks agree on every stat, every memory
// word, and every trace entry.
TEST(CompiledGolden, AdaptiveSteadyBlocksBitIdenticalToFixed64) {
  const Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 6;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(
      options.grid.nx, options.grid.ny, options.grid.nz);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // The workload must actually exercise the adaptive path: the compiled
  // image verifies clean and at least one instruction proves a steady
  // window beyond the legacy fixed block.
  const auto program = sim::CompiledProgram::compile(machine, gen.exe);
  ASSERT_NE(program, nullptr);
  ASSERT_NE(program->verify, nullptr);
  EXPECT_TRUE(program->verify->clean()) << program->verify->format();
  std::uint32_t widest = 0;
  for (const auto& ci : program->instrs) widest = std::max(widest, ci.steady_window);
  EXPECT_GT(widest, sim::kFallbackSteadyBlock);

  sim::NodeSim::Options fixed64;
  fixed64.steady_block_override = 64;
  NodeSim legacy(machine, legacyOptions());
  NodeSim pinned(machine, fixed64);
  NodeSim adaptive(machine);
  for (NodeSim* node : {&legacy, &pinned, &adaptive}) {
    node->load(gen.exe);
    jacobi.load(*node, problem);
  }
  const sim::RunStats legacy_run = legacy.run();
  const sim::RunStats pinned_run = pinned.run();
  const sim::RunStats adaptive_run = adaptive.run();
  ASSERT_FALSE(legacy_run.error) << legacy_run.error_message;

  expectIdenticalRuns(legacy_run, pinned_run);
  expectIdenticalRuns(legacy_run, adaptive_run);
  const std::uint64_t words =
      static_cast<std::uint64_t>(options.grid.N()) +
      2 * static_cast<std::uint64_t>(jacobi.layout().pad);
  expectIdenticalMemory(machine, legacy, adaptive, words);
  expectIdenticalMemory(machine, pinned, adaptive, words);
  EXPECT_EQ(jacobi.residual(pinned), jacobi.residual(adaptive));
}

// SPMD sharing: loadAll compiles once and every node aliases the same
// immutable image; the executable fingerprint survives the handoff.
TEST(CompiledProgram, SharedAcrossHypercubeNodes) {
  const Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {6, 6, 6};
  options.h = 0.2;
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  const cfd::JacobiProgram jacobi(machine, options);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Scalar mode: the pointer-sharing witness inspects per-node NodeSims,
  // which only exist off the batched path.
  sim::HypercubeSystem system(machine, 3, {.node_lanes = 1});
  system.loadAll(gen.exe);
  const auto& image = system.node(0).program();
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->fingerprint, gen.exe.fingerprint());
  for (int n = 1; n < system.numNodes(); ++n) {
    EXPECT_EQ(system.node(n).program().get(), image.get())
        << "node " << n << " holds a private program copy";
  }

  // ... and a re-generated identical program fingerprints identically,
  // while a different program does not.
  EXPECT_EQ(generator.generate(jacobi.program()).exe.fingerprint(),
            gen.exe.fingerprint());
  cfd::JacobiBuildOptions other = options;
  other.fixed_sweeps = 4;
  const cfd::JacobiProgram jacobi2(machine, other);
  EXPECT_NE(generator.generate(jacobi2.program()).exe.fingerprint(),
            gen.exe.fingerprint());
}

// ---------------------------------------------------------------------------
// Batched SoA engine goldens (sim/batch.h): a ReplicaBatch must be
// indistinguishable, lane by lane, from the same replicas run one at a time
// on the scalar engine — every RunStats field, every trace entry, every
// plane word, every cache buffer.
// ---------------------------------------------------------------------------

// Runs `gen` through a ReplicaBatch of `lanes` lanes and through `lanes`
// independent scalar NodeSims, seeding lane w on both paths through the
// same ReplicaStore callback, then pins everything observable identical.
void runBatchGolden(const Machine& machine, const mc::GenerateResult& gen,
                    int lanes, std::uint64_t plane_words,
                    const std::function<void(int, sim::ReplicaStore&)>& seed,
                    sim::NodeSim::Options options = {},
                    sim::BatchRunResult* result_out = nullptr) {
  const auto program = sim::CompiledProgram::compile(machine, gen.exe);
  ASSERT_NE(program, nullptr);
  sim::ReplicaBatch batch(machine, lanes, options);
  batch.load(program);
  std::vector<std::unique_ptr<NodeSim>> scalars;
  for (int w = 0; w < lanes; ++w) {
    auto node = std::make_unique<NodeSim>(machine, options);
    node->load(program);
    if (seed) {
      sim::NodeReplicaStore node_store(*node);
      seed(w, node_store);
      sim::ReplicaBatch::LaneStore lane_store(batch, w);
      seed(w, lane_store);
    }
    scalars.push_back(std::move(node));
  }
  sim::BatchRunResult result = batch.run();
  ASSERT_EQ(result.runs.size(), static_cast<std::size_t>(lanes));
  const arch::MachineConfig& cfg = machine.config();
  std::vector<double> cache_ref(cfg.cacheWords());
  for (int w = 0; w < lanes; ++w) {
    SCOPED_TRACE("lane " + std::to_string(w) + " of " + std::to_string(lanes));
    const sim::RunStats scalar_run = scalars[static_cast<std::size_t>(w)]->run();
    expectIdenticalRuns(scalar_run, result.runs[static_cast<std::size_t>(w)]);
    for (arch::PlaneId pl = 0; pl < cfg.num_memory_planes; ++pl) {
      EXPECT_EQ(scalars[static_cast<std::size_t>(w)]->readPlane(pl, 0,
                                                                plane_words),
                batch.readPlane(w, pl, 0, plane_words))
          << "plane " << pl;
    }
    for (arch::CacheId c = 0; c < cfg.num_caches; ++c) {
      for (int buf = 0; buf < cfg.cache_buffers; ++buf) {
        scalars[static_cast<std::size_t>(w)]->readCacheInto(c, buf, 0,
                                                            cache_ref);
        EXPECT_EQ(cache_ref, batch.readCache(w, c, buf, 0, cfg.cacheWords()))
            << "cache " << c << " buffer " << buf;
      }
    }
  }
  if (result_out != nullptr) *result_out = std::move(result);
}

// The two-FU scale pipeline over per-lane distinct vectors, at every lane
// width the ensemble engine uses in practice (1 = degenerate scalar batch,
// 13 = odd width such as an ensemble remainder, 8/16 = the SIMD sweet
// spots).
TEST(BatchedGolden, ScaleAddLaneWidths) {
  const Machine machine;
  const int n = 96;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId mul = machine.als(als).fus[0];
  const arch::FuId add = machine.als(als).fus[1];
  d.setFuOp(machine, mul, OpCode::kMul);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine, mul, 1, 3.0);
  d.setFuOp(machine, add, OpCode::kAdd);
  d.connect(machine, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(machine, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(machine, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeRead(1),
                           Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = d.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
  }
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  const auto seed = [n](int w, sim::ReplicaStore& store) {
    store.writePlane(0, 0, test::iota(n, 1.0 + w, 0.5));
    store.writePlane(1, 0, test::iota(n, -2.0 - 0.5 * w, 0.125));
  };
  for (const int lanes : {1, 4, 8, 13, 16}) {
    runBatchGolden(machine, gen, lanes, n, seed);
  }
}

// Read-only drain + accumulator + condition latch: the accumulator value is
// the one piece of per-lane state that feeds back into launch staging, and
// the drain counter finishes the instruction with no write engine.
TEST(BatchedGolden, AccumulatorLatchLaneWidths) {
  const Machine machine;
  const int n = 200;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("reduce");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId acc = machine.als(als).fus[1];
  d.setFuOp(machine, acc, OpCode::kMax);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(acc, 0));
  d.setAccumInput(machine, acc, 1, 0.0);
  d.cond = prog::CondLatch{acc, 2};
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, n, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  const auto seed = [n](int w, sim::ReplicaStore& store) {
    store.writePlane(0, 0, test::iota(n, 0.25 * (w + 1), 0.25));
  };
  for (const int lanes : {4, 8}) {
    runBatchGolden(machine, gen, lanes, n, seed);
  }
}

// The Figure-11 Jacobi fixed-sweep workload (shift/delay taps, caches,
// kLoop sequencing, plane ping-pong) with a per-lane scaled problem: the
// full production pipeline stays bit-identical through the SoA path.
TEST(BatchedGolden, Figure11JacobiFixedSweepsLanes8) {
  const Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 4;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(
      options.grid.nx, options.grid.ny, options.grid.nz);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Mirror JacobiProgram::load through the ReplicaStore interface, with the
  // right-hand side scaled per lane so every lane computes different data.
  const cfd::JacobiLayout& layout = jacobi.layout();
  const auto pad = static_cast<std::uint64_t>(layout.pad);
  const auto seed = [&](int w, sim::ReplicaStore& store) {
    std::vector<double> f = problem.f;
    for (double& v : f) v *= 1.0 + 0.25 * w;
    for (const arch::PlaneId pl : layout.u_a) store.writePlane(pl, pad, problem.u0);
    for (const arch::PlaneId pl : layout.u_b) store.writePlane(pl, pad, problem.u0);
    store.writePlane(layout.f_plane, pad, f);
    if (layout.mask_plane >= 0) {
      store.writePlane(layout.mask_plane, pad, options.grid.interiorMask());
    }
    if (layout.res_plane >= 0) {
      const double zero[] = {0.0};
      store.writePlane(layout.res_plane, 0, zero);
    }
  };
  const std::uint64_t words =
      static_cast<std::uint64_t>(options.grid.N()) + 2 * pad;
  runBatchGolden(machine, gen, 8, words, seed);
}

// Builds the three-instruction divergence harness: instruction 0 reduces
// plane0 through a kMax accumulator, latches the max into cond reg 1, and
// branches to instruction 2 when it exceeds 0.5; instruction 1 (the
// fall-through) copies plane0 to plane1 and halts.  Instruction 2 is left
// to the caller.
prog::Program divergenceProgram(const Machine& machine, int n) {
  prog::Program p;
  prog::PipelineDiagram& gate = p.append("gate");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId acc = machine.als(als).fus[1];
  gate.setFuOp(machine, acc, OpCode::kMax);
  gate.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(acc, 0));
  gate.setAccumInput(machine, acc, 1, 0.0);
  gate.cond = prog::CondLatch{acc, 1};
  gate.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                        1, 0, 0, false};
  gate.seq.op = arch::SeqOp::kBranchIf;
  gate.seq.cond_reg = 1;
  gate.seq.target = 2;

  prog::PipelineDiagram& clean = p.append("clean");
  clean.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeWrite(1)}) {
    prog::DmaSpec& dma = clean.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = static_cast<std::uint64_t>(n);
  }
  clean.seq.op = arch::SeqOp::kHalt;
  return p;
}

// Divergence with a faulting branch target: one lane's latched condition
// sends it to an instruction whose write engine is starved, so that lane
// times out mid-run on the scalar drain while the other lanes complete
// clean — exactly as the same replicas behave one at a time.
TEST(BatchedGolden, DivergenceOneLaneFaultsRestCompleteClean) {
  const Machine machine;
  const int n = 32;
  prog::Program p = divergenceProgram(machine, n);
  prog::PipelineDiagram& starved = p.append("starved");
  starved.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec read;
  read.base = 0;
  read.stride = 1;
  read.count = 4;
  prog::DmaSpec write = read;
  write.count = 8;  // four tokens never arrive: guaranteed timeout
  starved.dmaAt(Endpoint::planeRead(0)) = read;
  starved.dmaAt(Endpoint::planeWrite(1)) = write;
  starved.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  mc::GenerateOptions gen_options;
  gen_options.run_checker = false;  // the starved stream is the point
  const mc::GenerateResult gen = generator.generate(p, gen_options);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Lane 2 sees a value above the latch threshold and branches to the
  // faulting instruction; every other lane stays below and falls through.
  const auto seed = [n](int w, sim::ReplicaStore& store) {
    std::vector<double> x = test::iota(n, 0.001 * (w + 1), 0.0001);
    if (w == 2) x[static_cast<std::size_t>(n) / 2] = 1.0;
    store.writePlane(0, 0, x);
  };
  sim::NodeSim::Options options;
  options.max_cycles_per_instruction = 500;
  sim::BatchRunResult result;
  runBatchGolden(machine, gen, 8, n, seed, options, &result);
  // Exactly the diverged lane drained on the scalar engine, faulted; the
  // lockstep majority completed clean inside the batch.
  EXPECT_EQ(result.drained_scalar, 1);
  for (int w = 0; w < 8; ++w) {
    const sim::RunStats& run = result.runs[static_cast<std::size_t>(w)];
    EXPECT_EQ(run.error, w == 2) << "lane " << w;
    if (w == 2) {
      EXPECT_EQ(run.fault, sim::FaultKind::kTimeout);
    } else {
      EXPECT_TRUE(run.halted) << "lane " << w;
      EXPECT_EQ(run.fault, sim::FaultKind::kNone) << "lane " << w;
    }
  }
}

// Clean divergence split: a minority of lanes branch to an alternate clean
// instruction.  The batch keeps the (larger) fall-through group, drains the
// branch takers scalar, and both groups stay bit-identical — including the
// early completion of the group whose path halts first.
TEST(BatchedGolden, DivergenceCleanSplitBothPathsIdentical) {
  const Machine machine;
  const int n = 32;
  prog::Program p = divergenceProgram(machine, n);
  prog::PipelineDiagram& alt = p.append("alt");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId mul = machine.als(als).fus[0];
  alt.setFuOp(machine, mul, OpCode::kMul);
  alt.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  alt.setConstInput(machine, mul, 1, 2.0);
  alt.connect(machine, Endpoint::fuOutput(mul), Endpoint::planeWrite(2));
  for (const Endpoint e :
       {Endpoint::planeRead(0), Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = alt.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = static_cast<std::uint64_t>(n);
  }
  alt.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Lanes 1, 5, and 9 branch (13-lane batch, so the 10-lane fall-through
  // group is kept and three lanes retire to the scalar engine).
  const auto seed = [n](int w, sim::ReplicaStore& store) {
    std::vector<double> x = test::iota(n, 0.001 * (w + 1), 0.0001);
    if (w % 4 == 1) x[0] = 0.75;
    store.writePlane(0, 0, x);
  };
  sim::BatchRunResult result;
  runBatchGolden(machine, gen, 13, n, seed, {}, &result);
  EXPECT_EQ(result.drained_scalar, 3);
  for (int w = 0; w < 13; ++w) {
    const sim::RunStats& run = result.runs[static_cast<std::size_t>(w)];
    EXPECT_FALSE(run.error) << "lane " << w;
    ASSERT_EQ(run.trace.size(), 2u) << "lane " << w;
    EXPECT_EQ(run.trace[1].name, w % 4 == 1 ? "alt" : "clean")
        << "lane " << w;
  }
}

// Shape-level faults hit every lockstep lane identically: a DMA pattern
// past the plane capacity faults all lanes of the batch exactly as it
// faults each scalar replica.
TEST(BatchedGolden, DmaCapacityFaultAllLanes) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("overrun");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec spec;
  spec.base = 0;
  spec.stride = 1;
  spec.count = machine.config().sim_plane_words + 1;
  d.dmaAt(Endpoint::planeRead(0)) = spec;
  d.dmaAt(Endpoint::planeWrite(1)) = spec;
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  sim::BatchRunResult result;
  runBatchGolden(machine, gen, 8, 16, nullptr, {}, &result);
  for (const sim::RunStats& run : result.runs) {
    EXPECT_TRUE(run.error);
    EXPECT_EQ(run.fault, sim::FaultKind::kDmaBounds);
  }
}

}  // namespace
}  // namespace nsc
