// Hypercube system and hyperspace router tests.
#include <gtest/gtest.h>

#include "microcode/generator.h"
#include "sim/hypercube.h"
#include "test_helpers.h"

namespace nsc::sim {
namespace {

using arch::Endpoint;
using arch::Machine;

TEST(RouterTest, HopCountIsHammingDistance) {
  EXPECT_EQ(HypercubeSystem::hopCount(0, 0), 0);
  EXPECT_EQ(HypercubeSystem::hopCount(0, 1), 1);
  EXPECT_EQ(HypercubeSystem::hopCount(0b101, 0b010), 3);
  EXPECT_EQ(HypercubeSystem::hopCount(63, 0), 6);
}

TEST(RouterTest, EcubePathCorrectsDimensionsInOrder) {
  const auto path = HypercubeSystem::ecubePath(0b000, 0b110);
  // Lowest differing dimension first: 000 -> 010 -> 110.
  const std::vector<int> expected{0b000, 0b010, 0b110};
  EXPECT_EQ(path, expected);
  // Each consecutive pair differs in exactly one bit (valid hypercube
  // links) and the path has hopCount+1 entries.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(HypercubeSystem::hopCount(path[i], path[i + 1]), 1);
  }
}

TEST(RouterTest, SelfPathIsTrivial) {
  const auto path = HypercubeSystem::ecubePath(5, 5);
  EXPECT_EQ(path, std::vector<int>{5});
}

TEST(RouterTest, TransferCostScalesWithHopsAndWords) {
  Machine m;
  RouterOptions router;
  router.message_startup_cycles = 10;
  router.hop_latency_cycles = 4;
  router.words_per_cycle = 2.0;
  HypercubeSystem sys(m, 3, router);
  EXPECT_EQ(sys.transferCycles(0, 0, 100), 0u);
  EXPECT_EQ(sys.transferCycles(0, 1, 100), 10u + 4u + 50u);
  EXPECT_EQ(sys.transferCycles(0, 7, 100), 10u + 12u + 50u);
}

TEST(HypercubeTest, SendVectorMovesData) {
  Machine m;
  HypercubeSystem sys(m, 2);
  const std::vector<double> data{1, 2, 3, 4, 5};
  sys.node(0).writePlane(3, 100, data);
  const std::uint64_t cost = sys.sendVector(0, 3, 100, 5, 3, 7, 40);
  EXPECT_GT(cost, 0u);
  EXPECT_EQ(sys.node(3).readPlane(7, 40, 5), data);
}

TEST(HypercubeTest, SpmdRunAggregatesStats) {
  // Each node runs the same tiny SAXPY program on its own data.
  Machine m;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  d.setFuOp(m, mul, arch::OpCode::kMul);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(m, mul, 1, 3.0);
  d.connect(m, Endpoint::fuOutput(mul), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator g(m);
  const mc::GenerateResult gen = g.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  HypercubeSystem sys(m, 3);
  sys.loadAll(gen.exe);
  for (int n = 0; n < sys.numNodes(); ++n) {
    sys.node(n).writePlane(0, 0, test::iota(32, n));
  }
  SystemStats stats;
  sys.runPhase(stats);
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(stats.node_stats.size(), 8u);
  // All nodes ran the same program: makespan equals each node's cycles.
  EXPECT_GT(stats.compute_makespan_cycles, 0u);
  EXPECT_EQ(stats.total_flops, 8u * 32u);
  for (int n = 0; n < sys.numNodes(); ++n) {
    const auto out = sys.node(n).readPlane(1, 0, 32);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], 3.0 * (n + i));
    }
  }
}

TEST(HypercubeTest, ExchangePhaseChargesMaxOverNodes) {
  Machine m;
  RouterOptions router;
  router.message_startup_cycles = 100;
  router.hop_latency_cycles = 1;
  router.words_per_cycle = 1.0;
  HypercubeSystem sys(m, 2, router);
  SystemStats stats;
  sys.beginExchange();
  sys.node(0).writePlane(0, 0, test::iota(10));
  sys.sendVector(0, 0, 0, 10, 1, 0, 0);   // 1 hop:  100+1+10  = 111 into node 1
  sys.sendVector(0, 0, 0, 10, 2, 0, 0);   // 1 hop:  111 into node 2
  sys.sendVector(1, 0, 0, 10, 2, 0, 100); // 2 hops: 112 into node 2
  sys.endExchange(stats);
  // Node 2 received two messages serially: 223 cycles; node 1 only 111.
  EXPECT_EQ(stats.comm_cycles, 223u);
}

// Builds the tiny SPMD scale program used by the pool-centric tests.
mc::GenerateResult buildScaleProgram(const Machine& m) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  d.setFuOp(m, mul, arch::OpCode::kMul);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(m, mul, 1, 3.0);
  d.connect(m, Endpoint::fuOutput(mul), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;
  mc::Generator g(m);
  return g.generate(p);
}

SystemStats runScaleOnPool(const Machine& m, const mc::GenerateResult& gen,
                           exec::ThreadPool& pool, int phases) {
  HypercubeSystem sys(m, 3, {}, {}, &pool);
  sys.loadAll(gen.exe);
  for (int n = 0; n < sys.numNodes(); ++n) {
    sys.node(n).writePlane(0, 0, test::iota(32, n));
  }
  SystemStats stats;
  for (int phase = 0; phase < phases; ++phase) {
    sys.runPhase(stats);
    for (int n = 0; n < sys.numNodes(); ++n) sys.node(n).restart();
  }
  return stats;
}

TEST(HypercubeTest, RunPhaseIsBitIdenticalAcrossThreadCounts) {
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  exec::ThreadPool serial(exec::ExecOptions{1});
  exec::ThreadPool pooled(exec::ExecOptions{4});
  const SystemStats a = runScaleOnPool(m, gen, serial, 3);
  const SystemStats b = runScaleOnPool(m, gen, pooled, 3);

  EXPECT_EQ(a.compute_makespan_cycles, b.compute_makespan_cycles);
  EXPECT_EQ(a.comm_cycles, b.comm_cycles);
  EXPECT_EQ(a.total_flops, b.total_flops);
  EXPECT_EQ(a.error, b.error);
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size());
  for (std::size_t i = 0; i < a.node_stats.size(); ++i) {
    EXPECT_EQ(a.node_stats[i].total_cycles, b.node_stats[i].total_cycles);
    EXPECT_EQ(a.node_stats[i].total_flops, b.node_stats[i].total_flops);
    EXPECT_EQ(a.node_stats[i].total_hazards, b.node_stats[i].total_hazards);
    EXPECT_EQ(a.node_stats[i].instructions_executed,
              b.node_stats[i].instructions_executed);
  }
}

TEST(HypercubeTest, RunPhaseCreatesZeroThreadsAfterPoolConstruction) {
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  exec::ThreadPool pool(exec::ExecOptions{4});
  const std::uint64_t created_at_construction = pool.threadsCreated();
  EXPECT_EQ(created_at_construction, 3u);  // workers only, made once

  HypercubeSystem sys(m, 3, {}, {}, &pool);
  sys.loadAll(gen.exe);
  SystemStats stats;
  for (int phase = 0; phase < 10; ++phase) {
    sys.runPhase(stats);
    for (int n = 0; n < sys.numNodes(); ++n) sys.node(n).restart();
  }
  ASSERT_FALSE(stats.error) << stats.error_message;
  // The counting hook: ten phases, not one OS thread created.
  EXPECT_EQ(pool.threadsCreated(), created_at_construction);
}

TEST(HypercubeTest, D7SystemPhaseStatsAreConsistentAt128Nodes) {
  // The paper's flagship is a 64-node (d=6) NSC; the system accepts any
  // dimension but nothing exercised d > 6.  A stats-consistency (not
  // golden) check at d=7: 128 SPMD nodes over the shared pool must
  // aggregate exactly like one node times 128, phase after phase.
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Single-node reference for the per-node numbers.
  NodeSim reference(m);
  reference.load(gen.exe);
  const RunStats ref = reference.run();
  ASSERT_FALSE(ref.error);

  HypercubeSystem sys(m, 7);
  EXPECT_EQ(sys.numNodes(), 128);
  sys.loadAll(gen.exe);
  SystemStats stats;
  constexpr int kPhases = 2;
  for (int phase = 0; phase < kPhases; ++phase) {
    if (phase > 0) {
      for (int n = 0; n < sys.numNodes(); ++n) sys.node(n).restart();
    }
    sys.runPhase(stats);
  }
  ASSERT_FALSE(stats.error) << stats.error_message;
  ASSERT_EQ(stats.node_stats.size(), 128u);
  // SPMD on identical data: every node's accumulated stats equal the
  // single-node run times the phase count.
  const auto phases = static_cast<std::uint64_t>(kPhases);
  for (int n = 0; n < sys.numNodes(); ++n) {
    const RunStats& node = stats.node_stats[static_cast<std::size_t>(n)];
    EXPECT_EQ(node.total_cycles, phases * ref.total_cycles) << "node " << n;
    EXPECT_EQ(node.total_flops, phases * ref.total_flops) << "node " << n;
    EXPECT_EQ(node.instructions_executed,
              phases * ref.instructions_executed)
        << "node " << n;
  }
  // Aggregates: makespan is max-over-nodes summed over phases; flops sum
  // over nodes and phases; no exchange phases ran.
  EXPECT_EQ(stats.compute_makespan_cycles,
            static_cast<std::uint64_t>(kPhases) * ref.total_cycles);
  EXPECT_EQ(stats.total_flops,
            static_cast<std::uint64_t>(kPhases) * 128u * ref.total_flops);
  EXPECT_EQ(stats.comm_cycles, 0u);
}

TEST(HypercubeTest, SixtyFourNodePeakMatchesPaperClaim) {
  Machine m;
  HypercubeSystem sys(m, 6);
  EXPECT_EQ(sys.numNodes(), 64);
  const double peak_gflops =
      sys.numNodes() * m.config().peakMflopsPerNode() / 1000.0;
  EXPECT_NEAR(peak_gflops, 40.0, 1.0);  // "maximum performance of 40 GFLOPS"
}

}  // namespace
}  // namespace nsc::sim
