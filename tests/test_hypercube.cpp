// Hypercube system and hyperspace router tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "arch/microword_spec.h"
#include "microcode/generator.h"
#include "sim/hypercube.h"
#include "test_helpers.h"

namespace nsc::sim {
namespace {

using arch::Endpoint;
using arch::Machine;

TEST(RouterTest, HopCountIsHammingDistance) {
  EXPECT_EQ(HypercubeSystem::hopCount(0, 0), 0);
  EXPECT_EQ(HypercubeSystem::hopCount(0, 1), 1);
  EXPECT_EQ(HypercubeSystem::hopCount(0b101, 0b010), 3);
  EXPECT_EQ(HypercubeSystem::hopCount(63, 0), 6);
}

TEST(RouterTest, EcubePathCorrectsDimensionsInOrder) {
  const auto path = HypercubeSystem::ecubePath(0b000, 0b110);
  // Lowest differing dimension first: 000 -> 010 -> 110.
  const std::vector<int> expected{0b000, 0b010, 0b110};
  EXPECT_EQ(path, expected);
  // Each consecutive pair differs in exactly one bit (valid hypercube
  // links) and the path has hopCount+1 entries.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_EQ(HypercubeSystem::hopCount(path[i], path[i + 1]), 1);
  }
}

TEST(RouterTest, SelfPathIsTrivial) {
  const auto path = HypercubeSystem::ecubePath(5, 5);
  EXPECT_EQ(path, std::vector<int>{5});
}

TEST(RouterTest, TransferCostScalesWithHopsAndWords) {
  Machine m;
  RouterOptions router;
  router.message_startup_cycles = 10;
  router.hop_latency_cycles = 4;
  router.words_per_cycle = 2.0;
  HypercubeSystem sys(m, 3, {.router = router});
  EXPECT_EQ(sys.transferCycles(0, 0, 100), 0u);
  EXPECT_EQ(sys.transferCycles(0, 1, 100), 10u + 4u + 50u);
  EXPECT_EQ(sys.transferCycles(0, 7, 100), 10u + 12u + 50u);
}

TEST(HypercubeTest, SendVectorMovesData) {
  Machine m;
  HypercubeSystem sys(m, 2);
  const std::vector<double> data{1, 2, 3, 4, 5};
  sys.writePlane(0, 3, 100, data);
  const std::uint64_t cost = sys.sendVector(0, 3, 100, 5, 3, 7, 40);
  EXPECT_GT(cost, 0u);
  EXPECT_EQ(sys.readPlane(3, 7, 40, 5), data);
}

TEST(HypercubeTest, SpmdRunAggregatesStats) {
  // Each node runs the same tiny SAXPY program on its own data.
  Machine m;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  d.setFuOp(m, mul, arch::OpCode::kMul);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(m, mul, 1, 3.0);
  d.connect(m, Endpoint::fuOutput(mul), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator g(m);
  const mc::GenerateResult gen = g.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  HypercubeSystem sys(m, 3);
  sys.loadAll(gen.exe);
  for (int n = 0; n < sys.numNodes(); ++n) {
    sys.writePlane(n, 0, 0, test::iota(32, n));
  }
  SystemStats stats;
  sys.runPhase(stats);
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(stats.node_stats.size(), 8u);
  // All nodes ran the same program: makespan equals each node's cycles.
  EXPECT_GT(stats.compute_makespan_cycles, 0u);
  EXPECT_EQ(stats.total_flops, 8u * 32u);
  for (int n = 0; n < sys.numNodes(); ++n) {
    const auto out = sys.readPlane(n, 1, 0, 32);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)], 3.0 * (n + i));
    }
  }
}

TEST(HypercubeTest, ExchangePhaseChargesMaxOverNodes) {
  Machine m;
  RouterOptions router;
  router.message_startup_cycles = 100;
  router.hop_latency_cycles = 1;
  router.words_per_cycle = 1.0;
  HypercubeSystem sys(m, 2, {.router = router});
  SystemStats stats;
  sys.beginExchange();
  sys.writePlane(0, 0, 0, test::iota(10));
  sys.sendVector(0, 0, 0, 10, 1, 0, 0);   // 1 hop:  100+1+10  = 111 into node 1
  sys.sendVector(0, 0, 0, 10, 2, 0, 0);   // 1 hop:  111 into node 2
  sys.sendVector(1, 0, 0, 10, 2, 0, 100); // 2 hops: 112 into node 2
  sys.endExchange(stats);
  // Node 2 received two messages serially: 223 cycles; node 1 only 111.
  EXPECT_EQ(stats.comm_cycles, 223u);
}

// Builds the tiny SPMD scale program used by the pool-centric tests.
mc::GenerateResult buildScaleProgram(const Machine& m) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  d.setFuOp(m, mul, arch::OpCode::kMul);
  d.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(m, mul, 1, 3.0);
  d.connect(m, Endpoint::fuOutput(mul), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 32, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;
  mc::Generator g(m);
  return g.generate(p);
}

SystemStats runScaleOnPool(const Machine& m, const mc::GenerateResult& gen,
                           exec::ThreadPool& pool, int phases) {
  HypercubeSystem sys(m, 3, {}, &pool);
  sys.loadAll(gen.exe);
  for (int n = 0; n < sys.numNodes(); ++n) {
    sys.writePlane(n, 0, 0, test::iota(32, n));
  }
  SystemStats stats;
  for (int phase = 0; phase < phases; ++phase) {
    sys.runPhase(stats);
    sys.restartAll();
  }
  return stats;
}

TEST(HypercubeTest, RunPhaseIsBitIdenticalAcrossThreadCounts) {
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  exec::ThreadPool serial(exec::ExecOptions{1});
  exec::ThreadPool pooled(exec::ExecOptions{4});
  const SystemStats a = runScaleOnPool(m, gen, serial, 3);
  const SystemStats b = runScaleOnPool(m, gen, pooled, 3);

  EXPECT_EQ(a.compute_makespan_cycles, b.compute_makespan_cycles);
  EXPECT_EQ(a.comm_cycles, b.comm_cycles);
  EXPECT_EQ(a.total_flops, b.total_flops);
  EXPECT_EQ(a.error, b.error);
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size());
  for (std::size_t i = 0; i < a.node_stats.size(); ++i) {
    EXPECT_EQ(a.node_stats[i].total_cycles, b.node_stats[i].total_cycles);
    EXPECT_EQ(a.node_stats[i].total_flops, b.node_stats[i].total_flops);
    EXPECT_EQ(a.node_stats[i].total_hazards, b.node_stats[i].total_hazards);
    EXPECT_EQ(a.node_stats[i].instructions_executed,
              b.node_stats[i].instructions_executed);
  }
}

TEST(HypercubeTest, RunPhaseCreatesZeroThreadsAfterPoolConstruction) {
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  exec::ThreadPool pool(exec::ExecOptions{4});
  const std::uint64_t created_at_construction = pool.threadsCreated();
  EXPECT_EQ(created_at_construction, 3u);  // workers only, made once

  HypercubeSystem sys(m, 3, {}, &pool);
  sys.loadAll(gen.exe);
  SystemStats stats;
  for (int phase = 0; phase < 10; ++phase) {
    sys.runPhase(stats);
    sys.restartAll();
  }
  ASSERT_FALSE(stats.error) << stats.error_message;
  // The counting hook: ten phases, not one OS thread created.
  EXPECT_EQ(pool.threadsCreated(), created_at_construction);
}

TEST(HypercubeTest, D7SystemPhaseStatsAreConsistentAt128Nodes) {
  // The paper's flagship is a 64-node (d=6) NSC; the system accepts any
  // dimension but nothing exercised d > 6.  A stats-consistency (not
  // golden) check at d=7: 128 SPMD nodes over the shared pool must
  // aggregate exactly like one node times 128, phase after phase.
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Single-node reference for the per-node numbers.
  NodeSim reference(m);
  reference.load(gen.exe);
  const RunStats ref = reference.run();
  ASSERT_FALSE(ref.error);

  HypercubeSystem sys(m, 7);
  EXPECT_EQ(sys.numNodes(), 128);
  sys.loadAll(gen.exe);
  SystemStats stats;
  constexpr int kPhases = 2;
  for (int phase = 0; phase < kPhases; ++phase) {
    if (phase > 0) sys.restartAll();
    sys.runPhase(stats);
  }
  ASSERT_FALSE(stats.error) << stats.error_message;
  ASSERT_EQ(stats.node_stats.size(), 128u);
  // SPMD on identical data: every node's accumulated stats equal the
  // single-node run times the phase count.
  const auto phases = static_cast<std::uint64_t>(kPhases);
  for (int n = 0; n < sys.numNodes(); ++n) {
    const RunStats& node = stats.node_stats[static_cast<std::size_t>(n)];
    EXPECT_EQ(node.total_cycles, phases * ref.total_cycles) << "node " << n;
    EXPECT_EQ(node.total_flops, phases * ref.total_flops) << "node " << n;
    EXPECT_EQ(node.instructions_executed,
              phases * ref.instructions_executed)
        << "node " << n;
  }
  // Aggregates: makespan is max-over-nodes summed over phases; flops sum
  // over nodes and phases; no exchange phases ran.
  EXPECT_EQ(stats.compute_makespan_cycles,
            static_cast<std::uint64_t>(kPhases) * ref.total_cycles);
  EXPECT_EQ(stats.total_flops,
            static_cast<std::uint64_t>(kPhases) * 128u * ref.total_flops);
  EXPECT_EQ(stats.comm_cycles, 0u);
}

TEST(HypercubeTest, D8SystemPhaseStatsAreConsistentAt256Nodes) {
  // PR 9 raises the exercised scale again: 256 SPMD nodes (d=8), stepped
  // as SoA lane groups by default.  Same consistency contract as the d=7
  // test — every node's accumulated stats equal one scalar node times the
  // phase count — plus the engine counters: with the default lane width
  // every node-phase must have run batched.
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  NodeSim reference(m);
  reference.load(gen.exe);
  const RunStats ref = reference.run();
  ASSERT_FALSE(ref.error);

  HypercubeSystem sys(m, 8);
  EXPECT_EQ(sys.numNodes(), 256);
  EXPECT_GT(sys.nodeLanes(), 1);
  sys.loadAll(gen.exe);
  SystemStats stats;
  constexpr int kPhases = 2;
  for (int phase = 0; phase < kPhases; ++phase) {
    if (phase > 0) sys.restartAll();
    sys.runPhase(stats);
  }
  ASSERT_FALSE(stats.error) << stats.error_message;
  ASSERT_EQ(stats.node_stats.size(), 256u);
  const auto phases = static_cast<std::uint64_t>(kPhases);
  for (int n = 0; n < sys.numNodes(); ++n) {
    const RunStats& node = stats.node_stats[static_cast<std::size_t>(n)];
    EXPECT_EQ(node.total_cycles, phases * ref.total_cycles) << "node " << n;
    EXPECT_EQ(node.total_flops, phases * ref.total_flops) << "node " << n;
    EXPECT_EQ(node.instructions_executed,
              phases * ref.instructions_executed)
        << "node " << n;
  }
  EXPECT_EQ(stats.compute_makespan_cycles, phases * ref.total_cycles);
  EXPECT_EQ(stats.total_flops, phases * 256u * ref.total_flops);
  EXPECT_EQ(stats.comm_cycles, 0u);
  // The SPMD program never branches on data, so no node left the batch.
  EXPECT_EQ(stats.node_stats.size(),
            static_cast<std::size_t>(sys.numNodes()));
  EXPECT_EQ(sys.nodesBatched(), phases * 256u);
  EXPECT_EQ(sys.nodesScalar(), 0u);
}

// Builds a three-instruction program whose control flow depends on node
// data: "gate" max-reduces plane 0 into condition register 1 and branches
// to "alt" when the max exceeds 0.5; "clean" copies plane 0 -> plane 1;
// "alt" doubles plane 0 into plane 2.  Per-node seeds pick the path, so a
// batched system is forced to retire minority lanes mid-phase.
mc::GenerateResult buildDivergentProgram(const Machine& m, int n) {
  prog::Program p;
  prog::PipelineDiagram& gate = p.append("gate");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId acc = m.als(als).fus[1];
  gate.setFuOp(m, acc, arch::OpCode::kMax);
  gate.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(acc, 0));
  gate.setAccumInput(m, acc, 1, 0.0);
  gate.cond = prog::CondLatch{acc, 1};
  gate.dmaAt(Endpoint::planeRead(0)) = {
      "", 0, 1, static_cast<std::uint64_t>(n), 1, 0, 0, false};
  gate.seq.op = arch::SeqOp::kBranchIf;
  gate.seq.cond_reg = 1;
  gate.seq.target = 2;
  prog::PipelineDiagram& clean = p.append("clean");
  clean.connect(m, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeWrite(1)}) {
    prog::DmaSpec& dma = clean.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = static_cast<std::uint64_t>(n);
  }
  clean.seq.op = arch::SeqOp::kHalt;
  prog::PipelineDiagram& alt = p.append("alt");
  const arch::FuId mul = m.als(als).fus[0];
  alt.setFuOp(m, mul, arch::OpCode::kMul);
  alt.connect(m, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  alt.setConstInput(m, mul, 1, 2.0);
  alt.connect(m, Endpoint::fuOutput(mul), Endpoint::planeWrite(2));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = alt.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = static_cast<std::uint64_t>(n);
  }
  alt.seq.op = arch::SeqOp::kHalt;
  mc::Generator g(m);
  return g.generate(p);
}

void expectSystemStatsEqual(const SystemStats& want, const SystemStats& got) {
  EXPECT_EQ(want.compute_makespan_cycles, got.compute_makespan_cycles);
  EXPECT_EQ(want.comm_cycles, got.comm_cycles);
  EXPECT_EQ(want.total_flops, got.total_flops);
  EXPECT_EQ(want.error, got.error);
  EXPECT_EQ(want.error_message, got.error_message);
  ASSERT_EQ(want.node_stats.size(), got.node_stats.size());
  for (std::size_t i = 0; i < want.node_stats.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(want.node_stats[i].total_cycles, got.node_stats[i].total_cycles);
    EXPECT_EQ(want.node_stats[i].total_flops, got.node_stats[i].total_flops);
    EXPECT_EQ(want.node_stats[i].total_hazards,
              got.node_stats[i].total_hazards);
    EXPECT_EQ(want.node_stats[i].instructions_executed,
              got.node_stats[i].instructions_executed);
  }
}

// The PR 9 tentpole contract: a batched system is observably the same
// machine as a scalar one at every lane width and dimension — SystemStats,
// per-node planes, and engine-visible memory bit-identical — including
// mid-phase divergence (minority nodes retire into scalar continuations)
// and per-lane exchange staging between phases.
TEST(HypercubeTest, BatchedPhasesMatchScalarAcrossLaneWidthsAndDimensions) {
  Machine m;
  const int n = 32;
  const mc::GenerateResult gen = buildDivergentProgram(m, n);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();

  // Seeds: node id picks magnitude; every 4th node (id % 4 == 1) trips the
  // latch threshold and takes the "alt" branch.
  const auto seed = [n](HypercubeSystem& sys, int node) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = 0.001 * (node + 1) + 0.0001 * i;
    }
    if (node % 4 == 1) x[0] = 0.75;
    sys.writePlane(node, 0, 0, x);
  };
  constexpr int kPhases = 2;
  const auto runSystem = [&](int dimension, int lanes, SystemStats& stats,
                             std::vector<std::vector<double>>& planes) {
    HypercubeSystem sys(m, dimension, {.node_lanes = lanes});
    EXPECT_EQ(sys.nodeLanes(), std::min(lanes, sys.numNodes()));
    sys.loadAll(gen.exe);
    for (int node = 0; node < sys.numNodes(); ++node) seed(sys, node);
    for (int phase = 0; phase < kPhases; ++phase) {
      if (phase > 0) {
        // Ring-shift exchange: each node ships its plane-1 copy window to
        // the next node's plane 0 tail — per-lane staging on the batched
        // engine (gather from SoA, route, scatter into SoA).
        sys.beginExchange();
        for (int node = 0; node < sys.numNodes(); ++node) {
          sys.sendVector(node, 1, 0, 8, (node + 1) % sys.numNodes(), 0,
                         static_cast<std::uint64_t>(n));
        }
        sys.endExchange(stats);
        sys.restartAll();
      }
      sys.runPhase(stats);
    }
    for (int node = 0; node < sys.numNodes(); ++node) {
      for (const arch::PlaneId plane : {0, 1, 2}) {
        planes.push_back(
            sys.readPlane(node, plane, 0, static_cast<std::uint64_t>(n) + 8));
      }
    }
    if (sys.nodeLanes() > 1) {
      EXPECT_EQ(sys.nodesBatched() + sys.nodesScalar(),
                static_cast<std::uint64_t>(kPhases) *
                    static_cast<std::uint64_t>(sys.numNodes()));
      // id % 4 == 1 nodes diverge from the rest of their group, so some
      // nodes must have drained scalar — and the majority stayed batched.
      EXPECT_GT(sys.nodesScalar(), 0u);
      EXPECT_GT(sys.nodesBatched(), sys.nodesScalar());
    }
  };

  for (const int dimension : {2, 4, 6, 8}) {
    SCOPED_TRACE("d=" + std::to_string(dimension));
    SystemStats want;
    std::vector<std::vector<double>> want_planes;
    runSystem(dimension, 1, want, want_planes);
    ASSERT_FALSE(want.error) << want.error_message;
    for (const int lanes : {4, 8, 16}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes));
      SystemStats got;
      std::vector<std::vector<double>> got_planes;
      runSystem(dimension, lanes, got, got_planes);
      expectSystemStatsEqual(want, got);
      ASSERT_EQ(want_planes.size(), got_planes.size());
      for (std::size_t i = 0; i < want_planes.size(); ++i) {
        EXPECT_EQ(want_planes[i], got_planes[i]) << "plane image " << i;
      }
    }
  }
}

TEST(HypercubeTest, BatchedDmaFaultMatchesScalarGolden) {
  // Shape-level fault retirement: a read DMA programmed past the simulated
  // plane capacity faults every node identically.  The batched engine must
  // report the same system error, the same per-node stats, and survive a
  // restartAll + re-run exactly like scalar nodes do.
  Machine m;
  const mc::GenerateResult gen = buildScaleProgram(m);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  mc::Executable exe = gen.exe;
  const auto spec = arch::MicrowordSpec::shared(m);
  spec->set(exe.words[0], arch::MicrowordSpec::planeField(0, "base"),
            ~std::uint64_t{0});

  const auto runFaulty = [&](int lanes) {
    HypercubeSystem sys(m, 2, {.node_lanes = lanes});
    sys.loadAll(exe);
    SystemStats stats;
    for (int phase = 0; phase < 2 && !stats.error; ++phase) {
      if (phase > 0) sys.restartAll();
      sys.runPhase(stats);
    }
    return stats;
  };
  const SystemStats want = runFaulty(1);
  EXPECT_TRUE(want.error);
  for (const int lanes : {4, 8, 16}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    const SystemStats got = runFaulty(lanes);
    expectSystemStatsEqual(want, got);
  }
}

TEST(HypercubeTest, SixtyFourNodePeakMatchesPaperClaim) {
  Machine m;
  HypercubeSystem sys(m, 6);
  EXPECT_EQ(sys.numNodes(), 64);
  const double peak_gflops =
      sys.numNodes() * m.config().peakMflopsPerNode() / 1000.0;
  EXPECT_NEAR(peak_gflops, 40.0, 1.0);  // "maximum performance of 40 GFLOPS"
}

}  // namespace
}  // namespace nsc::sim
