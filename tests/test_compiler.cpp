// Stencil-language compiler tests: parsing, CSE/folding, capability-aware
// mapping, shift/delay inference, plane allocation, and end-to-end
// numerical agreement between the compiled pipeline and host evaluation.
#include <gtest/gtest.h>

#include "common/strings.h"

#include "checker/checker.h"
#include "common/rng.h"
#include "compiler/stencil_lang.h"
#include "microcode/generator.h"
#include "sim/node.h"

namespace nsc::xc {
namespace {

using arch::Machine;

TEST(StencilParseTest, RejectsBadSyntax) {
  EXPECT_FALSE(StencilProgram::parse("").isOk());
  EXPECT_FALSE(StencilProgram::parse("out = ;").isOk());
  EXPECT_FALSE(StencilProgram::parse("out = a +;").isOk());
  EXPECT_FALSE(StencilProgram::parse("out = frob(a);").isOk());
  EXPECT_FALSE(StencilProgram::parse("param p = a[1];").isOk());
  EXPECT_FALSE(StencilProgram::parse("reduce r = avg(a);").isOk());
  EXPECT_FALSE(StencilProgram::parse("out = a[x];").isOk());
  EXPECT_FALSE(StencilProgram::parse("out = a").isOk());  // missing ';'
}

TEST(StencilParseTest, ReportsLineNumbers) {
  const auto r = StencilProgram::parse("out = a;\nbad = ;\n");
  ASSERT_FALSE(r.isOk());
  EXPECT_NE(r.message().find("line 2"), std::string::npos);
}

TEST(StencilParseTest, InputArrayDiscovery) {
  const auto p = StencilProgram::parse("out = u[-1] + v * u[2];");
  ASSERT_TRUE(p.isOk()) << p.message();
  const auto inputs = p.value().inputArrays();
  EXPECT_EQ(inputs, (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ(p.value().statementCount(), 1);
}

TEST(StencilCompileTest, ConstantFoldingSkipsHardware) {
  Machine machine;
  const auto p = StencilProgram::parse("out = u * (2 + 3 * 4);");
  ASSERT_TRUE(p.isOk());
  const auto result = p.value().compile(machine, {16, 64});
  ASSERT_TRUE(result.isOk()) << result.message();
  // One multiply; the constant subtree folded to 14.
  EXPECT_EQ(result.value().fus_used, 1);
}

TEST(StencilCompileTest, CommonSubexpressionsShareUnits) {
  Machine machine;
  // (u+v) appears twice but must be computed once.
  const auto p = StencilProgram::parse("out = (u + v) * (u + v);");
  ASSERT_TRUE(p.isOk());
  const auto result = p.value().compile(machine, {16, 64});
  ASSERT_TRUE(result.isOk()) << result.message();
  EXPECT_EQ(result.value().fus_used, 2);  // one add, one mul
}

TEST(StencilCompileTest, ShiftDelayInferredForNeighborTaps) {
  Machine machine;
  const auto p = StencilProgram::parse("out = u[-1] + u[0] + u[1];");
  ASSERT_TRUE(p.isOk());
  const auto result = p.value().compile(machine, {32, 64});
  ASSERT_TRUE(result.isOk()) << result.message();
  const CompileResult& r = result.value();
  // One input stream feeding a shift/delay unit with three taps.
  ASSERT_EQ(r.diagram.sd_uses.size(), 1u);
  EXPECT_EQ(r.diagram.sd_uses[0].tap_delays.size(), 3u);
  EXPECT_EQ(r.pre_roll, 2);
  // Only one plane read for u.
  int reads = 0;
  for (const auto& [e, dma] : r.diagram.dma) {
    reads += e.kind == arch::EndpointKind::kPlaneRead;
  }
  EXPECT_EQ(reads, 1);
}

TEST(StencilCompileTest, MinMaxMapsToCapableUnit) {
  Machine machine;
  const auto p = StencilProgram::parse("out = max(u, v);");
  ASSERT_TRUE(p.isOk());
  const auto result = p.value().compile(machine, {8, 64});
  ASSERT_TRUE(result.isOk()) << result.message();
  for (const prog::AlsUse& use : result.value().diagram.als_uses) {
    const arch::AlsInfo& als = machine.als(use.als);
    for (std::size_t slot = 0; slot < use.fu.size(); ++slot) {
      if (use.fu[slot].enabled) {
        EXPECT_TRUE(machine.fuCanExecute(als.fus[slot], use.fu[slot].op));
      }
    }
  }
}

TEST(StencilCompileTest, CompiledDiagramPassesChecker) {
  Machine machine;
  const auto p = StencilProgram::parse(R"(
    param h2 = 0.02;
    out = (u[-1] + u[1] - 2 * u[0]) * h2 + f;
    reduce biggest = max(abs(out));
  )");
  ASSERT_TRUE(p.isOk()) << p.message();
  const auto result = p.value().compile(machine, {64, 128});
  ASSERT_TRUE(result.isOk()) << result.message();
  prog::Program program;
  program.pipelines.push_back(result.value().diagram);
  mc::Generator generator(machine);
  const auto gen = generator.generate(program);
  EXPECT_TRUE(gen.ok) << gen.diagnostics.format();
}

TEST(StencilCompileTest, RunsOnSimulatorAndMatchesHost) {
  Machine machine;
  const std::string source = R"(
    param a = 0.25;
    smooth = a * u[-1] + (1 - 2 * a) * u[0] + a * u[1];
    diff = smooth - u[0];
    reduce peak = max(abs(diff));
    reduce total = sum(diff);
  )";
  const auto parsed = StencilProgram::parse(source);
  ASSERT_TRUE(parsed.isOk()) << parsed.message();
  const StencilProgram& program = parsed.value();

  CompileOptions options;
  options.vector_length = 48;
  options.center_base = 64;
  const auto compiled = program.compile(machine, options);
  ASSERT_TRUE(compiled.isOk()) << compiled.message();
  const CompileResult& r = compiled.value();

  // Host data: u over the full window.
  common::Rng rng(11);
  std::vector<double> u(options.center_base + options.vector_length + 8);
  for (auto& v : u) v = rng.uniform(-2.0, 2.0);
  std::map<std::string, std::vector<double>> inputs{{"u", u}};
  const auto host = program.evaluate(inputs, options);
  ASSERT_TRUE(host.isOk()) << host.message();

  // Machine run: load input streams at their programmed bases.
  prog::Program machine_program;
  machine_program.pipelines.push_back(r.diagram);
  mc::Generator generator(machine);
  const auto gen = generator.generate(machine_program);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  sim::NodeSim node(machine);
  node.load(gen.exe);
  for (const StreamPlacement& s : r.streams) {
    if (!s.is_output) node.writePlane(s.plane, 0, inputs.at(s.array));
  }
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  // Outputs must agree exactly (same operation order on both sides).
  for (const auto& [name, plane] : r.output_planes) {
    const std::vector<double> got =
        node.readPlane(plane, options.center_base, options.vector_length);
    const std::vector<double>& want = host.value().outputs.at(name);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << name << "[" << i << "]";
    }
  }
  for (const auto& [name, where] : r.reductions) {
    EXPECT_EQ(node.readPlaneWord(where.first, where.second),
              host.value().reductions.at(name))
        << name;
  }
}

TEST(StencilCompileTest, PlaneExhaustionReported) {
  Machine machine;
  // 17 distinct arrays cannot fit 16 planes.
  std::string source = "out = a0";
  for (int i = 1; i < 17; ++i) {
    source += common::strFormat(" + a%d", i);
  }
  source += ";";
  const auto p = StencilProgram::parse(source);
  ASSERT_TRUE(p.isOk());
  const auto result = p.value().compile(machine, {8, 64});
  ASSERT_FALSE(result.isOk());
  EXPECT_NE(result.message().find("planes"), std::string::npos);
}

TEST(StencilCompileTest, FuExhaustionReported) {
  Machine machine;
  // A chain of 40 dependent adds cannot fit 32 units.
  std::string source = "out = u";
  for (int i = 0; i < 40; ++i) source += common::strFormat(" + v[%d]", i % 3);
  source += " + w + x + y + z";
  // Make every term distinct so CSE cannot collapse them.
  source = "out = u";
  for (int i = 0; i < 40; ++i) source += common::strFormat(" + %d.5 * u[%d]", i, i % 5);
  source += ";";
  const auto p = StencilProgram::parse(source);
  ASSERT_TRUE(p.isOk()) << p.message();
  const auto result = p.value().compile(machine, {8, 64});
  ASSERT_FALSE(result.isOk());
  EXPECT_NE(result.message().find("functional units"), std::string::npos);
}

}  // namespace
}  // namespace nsc::xc
