// Additional coverage: simulator edge cases, disassembler content checks,
// editor renumbering and control-flow rendering, debugger behavior, and
// e-cube routing properties.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.h"
#include "common/strings.h"
#include "editor/session.h"
#include "editor/window_render.h"
#include "microcode/disasm.h"
#include "nsc/nsc.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;

// ---------------------------------------------------------------------------
// Simulator edge cases
// ---------------------------------------------------------------------------

class SimEdgeTest : public ::testing::Test {
 protected:
  Machine machine_;
};

TEST_F(SimEdgeTest, NegativeStrideReversesAVector) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("reverse");
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 15, -1, 16, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 16, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;
  sim::NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine_, p, node, &err)) << err;
  node.writePlane(0, 0, test::iota(16, 0.0));
  ASSERT_FALSE(node.run().error);
  const auto out = node.readPlane(1, 0, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 15.0 - i);
  }
}

TEST_F(SimEdgeTest, MinAndSumAccumulators) {
  const arch::AlsId als = machine_.config().num_singlets;
  for (const auto& [op, seed, expect] :
       std::vector<std::tuple<OpCode, double, double>>{
           {OpCode::kMin, 1e300, -4.0}, {OpCode::kAdd, 0.0, 10.0}}) {
    prog::Program p;
    prog::PipelineDiagram& d = p.append("acc");
    const arch::FuId fu = machine_.als(als).fus[op == OpCode::kMin ? 1 : 0];
    d.setFuOp(machine_, fu, op);
    d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(fu, 0));
    d.setAccumInput(machine_, fu, 1, seed);
    d.connect(machine_, Endpoint::fuOutput(fu), Endpoint::planeWrite(1));
    d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 5, 1, 0, 0, false};
    d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 1, 1, 0, 0, false};
    d.seq.op = arch::SeqOp::kHalt;
    sim::NodeSim node(machine_);
    std::string err;
    ASSERT_TRUE(test::generateAndLoad(machine_, p, node, &err)) << err;
    node.writePlane(0, 0, std::vector<double>{3, -4, 2, 8, 1});
    ASSERT_FALSE(node.run().error);
    EXPECT_EQ(node.readPlaneWord(1, 0), expect);
  }
}

TEST_F(SimEdgeTest, ConditionRegistersPersistAcrossInstructions) {
  // Instruction 0 latches c2 from a comparison; instruction 1 is a pure
  // copy; instruction 2 branches on the still-latched c2.
  prog::Program p;
  const arch::AlsId als = machine_.config().num_singlets;
  const arch::FuId cmp = machine_.als(als).fus[0];

  prog::PipelineDiagram& latch = p.append("latch");
  latch.setFuOp(machine_, cmp, OpCode::kCmpLt);
  latch.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(cmp, 0));
  latch.setConstInput(machine_, cmp, 1, 100.0);
  latch.connect(machine_, Endpoint::fuOutput(cmp), Endpoint::planeWrite(1));
  latch.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 1, 1, 0, 0, false};
  latch.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 1, 1, 0, 0, false};
  latch.cond = prog::CondLatch{cmp, 2};

  prog::PipelineDiagram& copy = p.append("copy");
  copy.connect(machine_, Endpoint::planeRead(2), Endpoint::planeWrite(3));
  copy.dmaAt(Endpoint::planeRead(2)) = {"", 0, 1, 4, 1, 0, 0, false};
  copy.dmaAt(Endpoint::planeWrite(3)) = {"", 0, 1, 4, 1, 0, 0, false};

  prog::PipelineDiagram& branch = p.append("branch");
  branch.seq = {arch::SeqOp::kBranchIf, 4, 2, 0};
  prog::PipelineDiagram& miss = p.append("not-taken");
  miss.connect(machine_, Endpoint::planeRead(4), Endpoint::planeWrite(5));
  miss.dmaAt(Endpoint::planeRead(4)) = {"", 0, 1, 1, 1, 0, 0, false};
  miss.dmaAt(Endpoint::planeWrite(5)) = {"", 0, 1, 1, 1, 0, 0, false};
  prog::PipelineDiagram& halt = p.append("halt");
  halt.seq.op = arch::SeqOp::kHalt;

  sim::NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine_, p, node, &err)) << err;
  const double small[] = {5.0};
  node.writePlane(0, 0, small);  // 5 < 100 -> c2 set -> branch taken
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_TRUE(node.cond(2));
  // "not-taken" never executed.
  for (const sim::InstrStats& instr : stats.trace) {
    EXPECT_NE(instr.name, "not-taken");
  }
}

TEST_F(SimEdgeTest, RegisterFileDelayAtHardwareMaximum) {
  const int max_delay = machine_.config().rf_max_delay;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("deep-delay");
  const arch::AlsId als = machine_.config().num_singlets;
  const arch::FuId add = machine_.als(als).fus[0];
  d.setFuOp(machine_, add, OpCode::kAdd);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(add, 0));
  d.connect(machine_, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  prog::FuUse& use = d.fuUse(machine_, add);
  use.rf_mode = arch::RfMode::kDelay;
  use.rf_delay = max_delay;
  use.rf_delay_port = 1;
  d.connect(machine_, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeRead(1)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(2)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  // Bypass balancing (the skew here is intentional) but keep the checker
  // off too since it would flag alignment.
  mc::Generator generator(machine_);
  mc::GenerateOptions options;
  options.auto_balance = false;
  options.run_checker = false;
  const auto gen = generator.generate(p, options);
  ASSERT_TRUE(gen.ok);
  // A 63-cycle queue against 4-element streams means the operand windows
  // never overlap: no valid result ever reaches the write, and the
  // simulator reports the stall instead of hanging forever — exactly the
  // failure mode the checker's alignment rule exists to prevent.
  sim::NodeSim node(machine_, {.max_cycles_per_instruction = 4096});
  node.load(gen.exe);
  node.writePlane(0, 0, test::iota(4, 10.0));
  node.writePlane(1, 0, test::iota(4, 1.0));
  const sim::RunStats stats = node.run();
  EXPECT_TRUE(stats.error);
  EXPECT_NE(stats.error_message.find("did not complete"), std::string::npos);
  EXPECT_GT(stats.total_hazards, 0u);
  (void)max_delay;
}

TEST_F(SimEdgeTest, CacheWithoutSwapKeepsReadBufferStable) {
  prog::Program p;
  prog::PipelineDiagram& fill = p.append("fill-no-swap");
  fill.connect(machine_, Endpoint::planeRead(0), Endpoint::cacheWrite(2));
  fill.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 8, 1, 0, 0, false};
  fill.dmaAt(Endpoint::cacheWrite(2)) = {"", 0, 1, 8, 1, 0, 0, false};  // no swap
  fill.seq.op = arch::SeqOp::kHalt;
  sim::NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine_, p, node, &err)) << err;
  node.writePlane(0, 0, test::iota(8, 7.0));
  ASSERT_FALSE(node.run().error);
  // Data landed in buffer 1 (the non-read half) and stayed there.
  EXPECT_EQ(node.readCache(2, 1, 0, 8), test::iota(8, 7.0));
  EXPECT_EQ(node.readCache(2, 0, 0, 8), std::vector<double>(8, 0.0));
}

TEST_F(SimEdgeTest, RestartReplaysDeterministically) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("scale");
  const arch::AlsId als = machine_.config().num_singlets;
  const arch::FuId mul = machine_.als(als).fus[0];
  d.setFuOp(machine_, mul, OpCode::kMul);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine_, mul, 1, 2.0);
  d.connect(machine_, Endpoint::fuOutput(mul), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 8, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 8, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;
  sim::NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(test::generateAndLoad(machine_, p, node, &err)) << err;
  node.writePlane(0, 0, test::iota(8, 1.0));
  const sim::RunStats first = node.run();
  node.restart();
  const sim::RunStats second = node.run();
  EXPECT_EQ(first.total_cycles, second.total_cycles);
  EXPECT_EQ(first.total_flops, second.total_flops);
  EXPECT_EQ(node.readPlane(1, 0, 8), test::iota(8, 2.0, 2.0));
}

// ---------------------------------------------------------------------------
// Disassembler content
// ---------------------------------------------------------------------------

TEST(DisasmContentTest, JacobiSweepListsItsMachinery) {
  Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  mc::Generator generator(machine);
  const auto gen = generator.generate(jacobi.program());
  ASSERT_TRUE(gen.ok);
  const std::string text =
      mc::disassemble(machine, generator.spec(), gen.exe.words[0]);
  for (const char* needle :
       {"sd0 taps: 0 1 2", "sd1 taps: 0 16", "rf=accum", "rf=delay",
        "cond: latch c0", "plane09 write base=0 stride=1 count=1", "abs",
        "cmplt"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
}

// ---------------------------------------------------------------------------
// Editor renumbering + control-flow region
// ---------------------------------------------------------------------------

TEST(RenumberTest, MovesPipelineAndRetargetsBranches) {
  Machine machine;
  ed::Editor editor(machine);
  editor.renamePipeline("a");                 // 0
  editor.insertPipeline("b");                 // 1
  editor.insertPipeline("c");                 // 2
  editor.setSeq({arch::SeqOp::kJump, 0, 0, 0});  // c jumps to a
  // Move "c" to the front; its jump must still point at "a".
  ASSERT_TRUE(editor.renumberPipeline(0));
  EXPECT_EQ(editor.doc(0).semantic.name, "c");
  EXPECT_EQ(editor.doc(1).semantic.name, "a");
  EXPECT_EQ(editor.doc(0).semantic.seq.target, 1);
  // Undo restores the original order.
  ASSERT_TRUE(editor.undo());
  EXPECT_EQ(editor.doc(0).semantic.name, "a");
  EXPECT_EQ(editor.doc(2).semantic.seq.target, 0);
}

TEST(RenumberTest, OutOfRangeRefused) {
  Machine machine;
  ed::Editor editor(machine);
  EXPECT_FALSE(editor.renumberPipeline(5));
  EXPECT_FALSE(editor.renumberPipeline(-1));
}

TEST(ControlFlowRegionTest, SummarizesSequencerFlow) {
  Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  ed::Editor editor = editorForProgram(machine, jacobi.program());
  editor.jumpTo(0);
  const auto lines = editor.controlFlowSummary();
  ASSERT_EQ(lines.size(), jacobi.program().size());
  EXPECT_NE(lines[0].find('>'), std::string::npos);  // current marker
  EXPECT_NE(lines[6].find("brnot"), std::string::npos);
  EXPECT_NE(lines[13].find("brif"), std::string::npos);
  EXPECT_NE(lines[14].find("halt"), std::string::npos);
  // And the window render shows it in the left region.
  const std::string window = renderWindowAscii(editor);
  EXPECT_NE(window.find("brnot"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hypercube routing properties
// ---------------------------------------------------------------------------

class EcubeTest : public ::testing::TestWithParam<int> {};

TEST_P(EcubeTest, PathsAreMinimalAndDeadlockOrdered) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const int a = static_cast<int>(rng.below(64));
    const int b = static_cast<int>(rng.below(64));
    const auto path = sim::HypercubeSystem::ecubePath(a, b);
    ASSERT_EQ(static_cast<int>(path.size()),
              sim::HypercubeSystem::hopCount(a, b) + 1);
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    int last_dim = -1;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const unsigned diff = static_cast<unsigned>(path[i] ^ path[i + 1]);
      ASSERT_EQ(std::popcount(diff), 1);  // single-bit hops
      const int dim = std::countr_zero(diff);
      EXPECT_GT(dim, last_dim) << "e-cube corrects dimensions in order";
      last_dim = dim;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcubeTest, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Session round-trips through save/load
// ---------------------------------------------------------------------------

TEST(SessionFileTest, SessionThenSaveThenLoadThenRun) {
  Machine machine;
  ed::Editor editor(machine);
  const ed::SessionResult session = runSession(editor, R"(
pipeline "halve"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b 0.5
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=10 var=x
dma plane1.write base=0 stride=1 count=10 var=y
seq halt
)");
  ASSERT_TRUE(session.clean());
  const std::string path = ::testing::TempDir() + "/session_doc.json";
  ASSERT_TRUE(editor.saveToFile(path).isOk());

  ed::Editor loaded(machine);
  ASSERT_TRUE(loaded.loadFromFile(path).isOk());
  const auto gen = loaded.generate();
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  sim::NodeSim node(machine);
  node.load(gen.exe);
  node.writePlane(0, 0, test::iota(10, 2.0, 2.0));
  ASSERT_FALSE(node.run().error);
  EXPECT_EQ(node.readPlane(1, 0, 10), test::iota(10, 1.0, 1.0));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nsc
