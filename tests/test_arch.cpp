// Machine model tests: the paper's published parameters must hold for the
// default configuration, and the microword spec must stay inside the
// "few thousand bits ... dozens of separate fields" envelope.
#include <gtest/gtest.h>

#include <set>

#include "arch/machine.h"
#include "arch/microword_spec.h"
#include "arch/ops.h"

namespace nsc::arch {
namespace {

TEST(MachineConfigTest, PaperParameters) {
  const MachineConfig cfg;
  EXPECT_EQ(cfg.numFus(), 32);                       // 32 functional units
  EXPECT_EQ(cfg.num_memory_planes, 16);              // 16 planes
  EXPECT_EQ(cfg.plane_bytes, 128ull * 1024 * 1024);  // 128 MB each
  EXPECT_EQ(cfg.totalMemoryBytes(), 2ull * 1024 * 1024 * 1024);  // 2 GB/node
  EXPECT_EQ(cfg.num_caches, 16);
  EXPECT_EQ(cfg.cache_bytes, 8ull * 1024);  // 8 KB x 16 x 2 (Figure 1)
  EXPECT_EQ(cfg.cache_buffers, 2);
  EXPECT_EQ(cfg.num_shift_delay, 2);
  EXPECT_DOUBLE_EQ(cfg.peakMflopsPerNode(), 640.0);  // 640 MFLOPS peak
}

TEST(MachineConfigTest, SixtyFourNodeSystemClaims) {
  const MachineConfig cfg;
  // "A 64-node NSC would have a total memory of 128 Gbytes and maximum
  // performance of 40 GFLOPS."
  EXPECT_EQ(64 * cfg.totalMemoryBytes(), 128ull * 1024 * 1024 * 1024);
  EXPECT_NEAR(64 * cfg.peakMflopsPerNode() / 1000.0, 40.0, 1.0);
}

TEST(MachineTest, AlsCompositionCoversAllFus) {
  const Machine m;
  EXPECT_EQ(static_cast<int>(m.fus().size()), 32);
  EXPECT_EQ(static_cast<int>(m.als().size()), 16);
  int from_als = 0;
  for (const AlsInfo& als : m.als()) {
    from_als += static_cast<int>(als.fus.size());
    EXPECT_EQ(static_cast<int>(als.fus.size()), alsFuCount(als.kind));
  }
  EXPECT_EQ(from_als, 32);
}

TEST(MachineTest, EveryFuDoesFloatingPoint) {
  const Machine m;
  for (const FuInfo& fu : m.fus()) {
    EXPECT_TRUE(fu.caps & kCapFp) << "fu" << fu.id;
  }
}

TEST(MachineTest, PerAlsAsymmetries) {
  // "Only a single unit can perform integer operations, and another unit
  // has circuitry for min/max computations."
  const Machine m;
  for (const AlsInfo& als : m.als()) {
    int int_units = 0, minmax_units = 0;
    for (const FuId fu : als.fus) {
      if (m.fu(fu).caps & kCapIntLogic) ++int_units;
      if (m.fu(fu).caps & kCapMinMax) ++minmax_units;
    }
    EXPECT_EQ(int_units, 1) << "als" << als.id;
    EXPECT_EQ(minmax_units, 1) << "als" << als.id;
    if (als.kind != AlsKind::kSinglet) {
      // Integer on the first unit, min/max on the last (distinct units).
      EXPECT_TRUE(m.fu(als.fus.front()).caps & kCapIntLogic);
      EXPECT_TRUE(m.fu(als.fus.back()).caps & kCapMinMax);
    }
  }
}

TEST(MachineTest, SourceAndDestinationIndicesAreDense) {
  const Machine m;
  std::set<Endpoint> seen;
  for (std::size_t i = 0; i < m.sources().size(); ++i) {
    const Endpoint& e = m.sources()[i];
    EXPECT_TRUE(endpointIsSource(e.kind));
    EXPECT_EQ(m.sourceIndex(e), static_cast<int>(i));
    EXPECT_TRUE(seen.insert(e).second) << "duplicate source " << e.toString();
  }
  seen.clear();
  for (std::size_t i = 0; i < m.destinations().size(); ++i) {
    const Endpoint& e = m.destinations()[i];
    EXPECT_TRUE(endpointIsDestination(e.kind));
    EXPECT_EQ(m.destinationIndex(e), static_cast<int>(i));
    EXPECT_TRUE(seen.insert(e).second);
  }
  EXPECT_EQ(m.sourceIndex(Endpoint::fuInput(0, 0)), -1);
  EXPECT_EQ(m.destinationIndex(Endpoint::fuOutput(0)), -1);
}

TEST(MachineTest, ChainPathOnlyBetweenConsecutiveSlots) {
  const Machine m;
  for (const AlsInfo& als : m.als()) {
    for (std::size_t s = 0; s + 1 < als.fus.size(); ++s) {
      EXPECT_TRUE(m.isChainPath(als.fus[s], als.fus[s + 1]));
      EXPECT_FALSE(m.isChainPath(als.fus[s + 1], als.fus[s]));
    }
  }
  // Across ALS boundaries: never.
  EXPECT_FALSE(m.isChainPath(m.als(0).fus.back(), m.als(1).fus.front()));
}

TEST(MachineTest, RestrictedSubsetModel) {
  const Machine m(MachineConfig::restrictedSubset());
  EXPECT_EQ(static_cast<int>(m.fus().size()), 32);
  EXPECT_EQ(m.config().num_caches, 0);
  EXPECT_EQ(m.config().num_shift_delay, 0);
  for (const AlsInfo& als : m.als()) {
    EXPECT_EQ(als.kind, AlsKind::kSinglet);
  }
  // Still universal: every capability reachable somewhere.
  bool any_int = false, any_minmax = false;
  for (const FuInfo& fu : m.fus()) {
    any_int = any_int || (fu.caps & kCapIntLogic);
    any_minmax = any_minmax || (fu.caps & kCapMinMax);
  }
  EXPECT_TRUE(any_int);
  EXPECT_TRUE(any_minmax);
}

TEST(MachineTest, DescribeMentionsKeyNumbers) {
  const Machine m;
  const std::string text = m.describe();
  EXPECT_NE(text.find("32 functional units"), std::string::npos);
  EXPECT_NE(text.find("2 GB"), std::string::npos);
  EXPECT_NE(text.find("640 MFLOPS"), std::string::npos);
}

TEST(OpsTest, TableIsConsistent) {
  for (int i = 0; i < static_cast<int>(OpCode::kNumOps); ++i) {
    const OpInfo& info = opInfo(static_cast<OpCode>(i));
    EXPECT_EQ(static_cast<int>(info.op), i);
    EXPECT_GE(info.latency, 1);
    if (info.op != OpCode::kNop) {
      EXPECT_GE(info.arity, 1);
      EXPECT_LE(info.arity, 2);
      EXPECT_EQ(opByName(info.name), info.op) << info.name;
    }
  }
  EXPECT_FALSE(opByName("frobnicate").has_value());
}

TEST(OpsTest, CapabilityFiltering) {
  const auto fp_only = opsForCaps(kCapFp);
  for (const OpCode op : fp_only) {
    EXPECT_EQ(opInfo(op).required_cap, kCapFp);
  }
  const auto with_minmax = opsForCaps(kCapFp | kCapMinMax);
  EXPECT_NE(std::find(with_minmax.begin(), with_minmax.end(), OpCode::kMax),
            with_minmax.end());
  EXPECT_EQ(std::find(fp_only.begin(), fp_only.end(), OpCode::kMax),
            fp_only.end());
  EXPECT_EQ(std::find(fp_only.begin(), fp_only.end(), OpCode::kIAdd),
            fp_only.end());
}

TEST(OpsTest, EvalSemantics) {
  EXPECT_EQ(evalOp(OpCode::kAdd, 2, 3), 5.0);
  EXPECT_EQ(evalOp(OpCode::kSub, 2, 3), -1.0);
  EXPECT_EQ(evalOp(OpCode::kMul, 2, 3), 6.0);
  EXPECT_EQ(evalOp(OpCode::kDiv, 3, 2), 1.5);
  EXPECT_EQ(evalOp(OpCode::kAbs, -4, 0), 4.0);
  EXPECT_EQ(evalOp(OpCode::kNeg, 4, 0), -4.0);
  EXPECT_EQ(evalOp(OpCode::kMin, 2, 3), 2.0);
  EXPECT_EQ(evalOp(OpCode::kMax, 2, 3), 3.0);
  EXPECT_EQ(evalOp(OpCode::kCmpLt, 2, 3), 1.0);
  EXPECT_EQ(evalOp(OpCode::kCmpLt, 3, 2), 0.0);
  EXPECT_EQ(evalOp(OpCode::kAnd, 6, 3), 2.0);
  EXPECT_EQ(evalOp(OpCode::kShl, 1, 4), 16.0);
  EXPECT_EQ(evalOp(OpCode::kPass, 7, 99), 7.0);
}

TEST(MicrowordSpecTest, FieldsArePackedWithoutOverlapOrGap) {
  const Machine m;
  const MicrowordSpec spec(m);
  std::size_t offset = 0;
  for (const MicroField& f : spec.fields()) {
    EXPECT_EQ(f.offset, offset) << f.name;
    EXPECT_GE(f.width, 1u);
    offset += f.width;
  }
  EXPECT_EQ(offset, spec.widthBits());
}

TEST(MicrowordSpecTest, PaperEnvelopeFewThousandBitsDozensOfFields) {
  const Machine m;
  const MicrowordSpec spec(m);
  // "a few thousand bits of information per instruction"
  EXPECT_GE(spec.widthBits(), 2000u);
  EXPECT_LE(spec.widthBits(), 8000u);
  // "encoded in dozens of separate fields" — per-component control groups.
  EXPECT_GE(spec.fields().size(), 100u);
  const auto sections = spec.sectionBitCounts();
  EXPECT_GE(sections.size(), 8u);
}

TEST(MicrowordSpecTest, EncodeDecodeRoundTrip) {
  const Machine m;
  const MicrowordSpec spec(m);
  common::BitVector word = spec.makeWord();
  spec.set(word, "fu07.opcode", 13);
  spec.set(word, "seq.target", 1234);
  spec.setSigned(word, "plane03.stride", -64);
  spec.setSigned(word, "plane03.stride2", -4096);
  EXPECT_EQ(spec.get(word, "fu07.opcode"), 13u);
  EXPECT_EQ(spec.get(word, "seq.target"), 1234u);
  EXPECT_EQ(spec.getSigned(word, "plane03.stride"), -64);
  EXPECT_EQ(spec.getSigned(word, "plane03.stride2"), -4096);
  // Unset fields remain zero.
  EXPECT_EQ(spec.get(word, "fu08.opcode"), 0u);
}

TEST(MicrowordSpecTest, UnknownFieldThrows) {
  const Machine m;
  const MicrowordSpec spec(m);
  EXPECT_THROW(spec.field("fu99.opcode"), std::out_of_range);
}

TEST(MicrowordSpecTest, EveryComponentHasControlBits) {
  const Machine m;
  const MicrowordSpec spec(m);
  for (const FuInfo& fu : m.fus()) {
    EXPECT_TRUE(spec.hasField(MicrowordSpec::fuField(fu.id, "opcode")));
  }
  for (int p = 0; p < m.config().num_memory_planes; ++p) {
    EXPECT_TRUE(spec.hasField(MicrowordSpec::planeField(p, "base")));
  }
  for (int c = 0; c < m.config().num_caches; ++c) {
    EXPECT_TRUE(spec.hasField(MicrowordSpec::cacheField(c, "mode")));
  }
  for (std::size_t d = 0; d < m.destinations().size(); ++d) {
    EXPECT_TRUE(spec.hasField(MicrowordSpec::switchField(static_cast<int>(d))));
  }
}

TEST(EndpointTest, ToStringForms) {
  EXPECT_EQ(Endpoint::fuInput(3, 1).toString(), "fu3.b");
  EXPECT_EQ(Endpoint::fuOutput(12).toString(), "fu12.out");
  EXPECT_EQ(Endpoint::planeRead(5).toString(), "plane5.read");
  EXPECT_EQ(Endpoint::cacheWrite(15).toString(), "cache15.write");
  EXPECT_EQ(Endpoint::sdOutput(1, 2).toString(), "sd1.tap2");
}

}  // namespace
}  // namespace nsc::arch
