// Rendering tests: canvas primitives, SVG well-formedness, datapath
// figure, icon figures, and the full window.
#include <gtest/gtest.h>

#include "editor/window_render.h"
#include "render/canvas.h"
#include "render/datapath.h"
#include "render/svg.h"

namespace nsc {
namespace {

TEST(AsciiCanvasTest, TextAndLines) {
  render::AsciiCanvas c(20, 5);
  c.text(2, 1, "hello");
  c.hline(0, 9, 3);
  c.vline(10, 0, 4);
  const std::string s = c.toString();
  EXPECT_NE(s.find("hello"), std::string::npos);
  EXPECT_NE(s.find("----------"), std::string::npos);
  EXPECT_EQ(c.at(10, 2), '|');
  // Out-of-bounds writes are clipped, not fatal.
  c.set(100, 100, 'x');
  c.text(-5, 2, "clip");
}

TEST(AsciiCanvasTest, BoxWithTitle) {
  render::AsciiCanvas c(20, 6);
  c.box(1, 1, 12, 4, "title");
  EXPECT_EQ(c.at(1, 1), '+');
  EXPECT_EQ(c.at(12, 4), '+');
  EXPECT_NE(c.toString().find("title"), std::string::npos);
}

TEST(AsciiCanvasTest, RouteMarksSourceAndDestination) {
  render::AsciiCanvas c(20, 8);
  c.route(2, 2, 10, 6);
  EXPECT_EQ(c.at(2, 2), 'o');
  EXPECT_EQ(c.at(10, 6), '*');
  EXPECT_EQ(c.at(10, 2), '+');  // corner of the L
}

TEST(AsciiCanvasTest, TrailingWhitespaceTrimmed) {
  render::AsciiCanvas c(40, 2);
  c.text(0, 0, "x");
  EXPECT_EQ(c.toString(), "x\n\n");
}

TEST(SvgTest, WellFormedDocument) {
  render::SvgBuilder svg(100, 50);
  svg.rect(1, 2, 3, 4);
  svg.line(0, 0, 10, 10);
  svg.circle(5, 5, 2);
  svg.text(10, 10, "a<b&c");
  const std::string doc = svg.finish();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("a&lt;b&amp;c"), std::string::npos);
  // Tag balance for the primitive elements we emit.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '<'),
            std::count(doc.begin(), doc.end(), '>'));
}

TEST(DatapathTest, AsciiMentionsEveryComponent) {
  arch::Machine machine;
  const std::string fig = render::datapathAscii(machine);
  EXPECT_NE(fig.find("Hyperspace Router"), std::string::npos);
  EXPECT_NE(fig.find("Data Caches"), std::string::npos);
  EXPECT_NE(fig.find("Switch Network"), std::string::npos);
  EXPECT_NE(fig.find("Memory Planes"), std::string::npos);
  EXPECT_NE(fig.find("Shift/Delay"), std::string::npos);
  EXPECT_NE(fig.find("32 Functional Units"), std::string::npos);
  EXPECT_NE(fig.find("640 MFLOPS"), std::string::npos);
}

TEST(DatapathTest, TracksConfigChanges) {
  arch::MachineConfig cfg;
  cfg.num_singlets = 8;
  cfg.num_doublets = 12;
  cfg.num_triplets = 0;
  const arch::Machine machine(cfg);
  const std::string fig = render::datapathAscii(machine);
  EXPECT_NE(fig.find("8 singlets"), std::string::npos);
  EXPECT_NE(fig.find("12 doublets"), std::string::npos);
}

TEST(DatapathTest, SvgVariant) {
  arch::Machine machine;
  const std::string fig = render::datapathSvg(machine);
  EXPECT_NE(fig.find("Hyperspace Router"), std::string::npos);
  EXPECT_NE(fig.find("</svg>"), std::string::npos);
}

TEST(IconRenderTest, AllFourPaletteIcons) {
  for (const ed::IconKind kind :
       {ed::IconKind::kSinglet, ed::IconKind::kDoublet,
        ed::IconKind::kDoubletBypass, ed::IconKind::kTriplet}) {
    const std::string fig = ed::renderIconAscii(kind);
    EXPECT_NE(fig.find("ALS"), std::string::npos) << iconKindName(kind);
    EXPECT_NE(fig.find('o'), std::string::npos) << "pads missing";
  }
}

TEST(WindowRenderTest, FigureFiveRegionsPresent) {
  arch::Machine machine;
  ed::Editor editor(machine);
  const std::string window = ed::renderWindowAscii(editor);
  EXPECT_NE(window.find("control panel"), std::string::npos);
  EXPECT_NE(window.find("control flow"), std::string::npos);
  EXPECT_NE(window.find("[singlet]"), std::string::npos);
  EXPECT_NE(window.find("[triplet]"), std::string::npos);
  EXPECT_NE(window.find("(generate)"), std::string::npos);
  EXPECT_NE(window.find("pipe 1/1"), std::string::npos);
}

TEST(WindowRenderTest, MessageStripShowsCheckerProse) {
  arch::Machine machine;
  ed::Editor editor(machine);
  editor.placeIcon(ed::IconKind::kDoublet,
                   {editor.layout().drawing.x + 60, editor.layout().drawing.y + 60});
  const arch::FuId fu = machine.als(machine.config().num_singlets).fus[0];
  editor.setFuOp(fu, arch::OpCode::kMax);  // refused: no min/max circuitry
  const std::string window = ed::renderWindowAscii(editor);
  EXPECT_NE(window.find("circuitry"), std::string::npos);
}

TEST(WindowRenderTest, DiagramShowsOpsAndStubs) {
  arch::Machine machine;
  ed::Editor editor(machine);
  editor.placeIcon(ed::IconKind::kDoublet,
                   {editor.layout().drawing.x + 100, editor.layout().drawing.y + 80});
  const arch::FuId fu = machine.als(machine.config().num_singlets).fus[0];
  editor.setFuOp(fu, arch::OpCode::kMul);
  editor.connect(arch::Endpoint::planeRead(0), arch::Endpoint::fuInput(fu, 0));
  editor.connect(arch::Endpoint::fuOutput(fu), arch::Endpoint::planeWrite(1));
  const std::string diagram = ed::renderDiagramAscii(editor);
  EXPECT_NE(diagram.find("mul"), std::string::npos);
  EXPECT_NE(diagram.find("plane0.read"), std::string::npos);
  EXPECT_NE(diagram.find("plane1.write"), std::string::npos);

  const std::string svg = ed::renderDiagramSvg(editor);
  EXPECT_NE(svg.find("mul"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace nsc
