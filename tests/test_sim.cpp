// Simulator integration tests: every datapath component exercised through
// the real toolchain (diagram -> checker -> microcode -> NodeSim).
#include <gtest/gtest.h>

#include <cmath>

#include "arch/machine.h"
#include "microcode/disasm.h"
#include "microcode/generator.h"
#include "program/program.h"
#include "common/rng.h"
#include "sim/node.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;
using sim::NodeSim;
using test::generateAndLoad;
using test::iota;

class SimTest : public ::testing::Test {
 protected:
  Machine machine_;
};

// The first doublet ALS (slot 0 has integer caps, slot 1 min/max).
arch::AlsId firstDoublet(const Machine& m) { return m.config().num_singlets; }

TEST_F(SimTest, SaxpyThroughChainedDoublet) {
  const int n = 64;
  const double alpha = 2.5;
  prog::Program p;
  p.name = "saxpy";
  prog::PipelineDiagram& d = p.append("saxpy");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId mul = machine_.als(als).fus[0];
  const arch::FuId add = machine_.als(als).fus[1];

  d.setFuOp(machine_, mul, OpCode::kMul);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine_, mul, 1, alpha);
  d.setFuOp(machine_, add, OpCode::kAdd);
  d.connect(machine_, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(machine_, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(machine_, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e :
       {Endpoint::planeRead(0), Endpoint::planeRead(1), Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = d.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
  }
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;

  const std::vector<double> x = iota(n, 1.0, 0.5);
  const std::vector<double> y = iota(n, -3.0, 0.25);
  node.writePlane(0, 0, x);
  node.writePlane(1, 0, y);

  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.total_hazards, 0u);

  const std::vector<double> out = node.readPlane(2, 0, n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              alpha * x[static_cast<std::size_t>(i)] + y[static_cast<std::size_t>(i)])
        << "element " << i;
  }
  // 2 flops per element (mul + add).
  EXPECT_EQ(stats.total_flops, static_cast<std::uint64_t>(2 * n));
}

TEST_F(SimTest, SaxpyDelayBalancingIsAutomatic) {
  // The add unit's stream input arrives 8 cycles before the chained mul
  // result; the generator must have inserted a register-file delay.
  const int n = 16;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("check-delay");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId mul = machine_.als(als).fus[0];
  const arch::FuId add = machine_.als(als).fus[1];
  d.setFuOp(machine_, mul, OpCode::kMul);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine_, mul, 1, 1.0);
  d.setFuOp(machine_, add, OpCode::kAdd);
  d.connect(machine_, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(machine_, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(machine_, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e :
       {Endpoint::planeRead(0), Endpoint::planeRead(1), Endpoint::planeWrite(2)}) {
    d.dmaAt(e) = {"", 0, 1, static_cast<std::uint64_t>(n), 1, 0, 0, false};
  }
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine_);
  const mc::GenerateResult result = generator.generate(p);
  ASSERT_TRUE(result.ok) << result.diagnostics.format();
  const prog::FuUse* use = result.balanced[0].findFu(machine_, add);
  ASSERT_NE(use, nullptr);
  EXPECT_EQ(use->rf_mode, arch::RfMode::kDelay);
  EXPECT_EQ(use->rf_delay_port, 1);
  EXPECT_EQ(use->rf_delay, arch::opInfo(OpCode::kMul).latency);
}

TEST_F(SimTest, MaxReductionWithAccumulatorFeedback) {
  const int n = 100;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("reduce-max");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId mx = machine_.als(als).fus[1];  // min/max capable slot
  d.setFuOp(machine_, mx, OpCode::kMax);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(mx, 0));
  d.setAccumInput(machine_, mx, 1, -1e300);
  d.connect(machine_, Endpoint::fuOutput(mx), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                     1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 1, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;

  std::vector<double> x(n);
  double expected = -1e300;
  common::Rng rng(7);
  for (auto& v : x) {
    v = rng.uniform(-50.0, 50.0);
    expected = std::max(expected, v);
  }
  node.writePlane(0, 0, x);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(node.readPlaneWord(1, 0), expected);
}

TEST_F(SimTest, SumReductionMatchesSequentialOrder) {
  const int n = 37;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("reduce-sum");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId acc = machine_.als(als).fus[0];
  d.setFuOp(machine_, acc, OpCode::kAdd);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(acc, 0));
  d.setAccumInput(machine_, acc, 1, 0.0);
  d.connect(machine_, Endpoint::fuOutput(acc), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                     1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 1, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  const std::vector<double> x = iota(n, 0.25, 0.5);
  double expected = 0.0;
  for (double v : x) expected += v;  // same left-to-right order
  node.writePlane(0, 0, x);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(node.readPlaneWord(1, 0), expected);
}

TEST_F(SimTest, ShiftDelayFormsNeighborStream) {
  // d[i] = x[i+1] - x[i] via one stream and two taps with element shifts
  // 0 and 1; the valid window shrinks by one element.
  const int n = 32;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("moving-diff");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId sub = machine_.als(als).fus[0];
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::sdInput(0));
  d.useSd(0, {0, 1});
  d.setFuOp(machine_, sub, OpCode::kSub);
  d.connect(machine_, Endpoint::sdOutput(0, 0), Endpoint::fuInput(sub, 0));
  d.connect(machine_, Endpoint::sdOutput(0, 1), Endpoint::fuInput(sub, 1));
  d.connect(machine_, Endpoint::fuOutput(sub), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                     1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {
      "", 0, 1, static_cast<std::uint64_t>(n - 1), 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  std::vector<double> x(n);
  common::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  node.writePlane(0, 0, x);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  const std::vector<double> out = node.readPlane(1, 0, n - 1);
  for (int i = 0; i < n - 1; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              x[static_cast<std::size_t>(i + 1)] - x[static_cast<std::size_t>(i)])
        << "element " << i;
  }
  // One warmup bubble (deep tap cold) and one drain bubble (shallow tap
  // exhausted first).
  EXPECT_EQ(stats.total_hazards, 2u);
}

TEST_F(SimTest, CacheDoubleBufferFillSwapAndDrain) {
  const int n = 48;
  prog::Program p;
  // Instruction 0: stream plane 0 into cache 0 (fills the non-read buffer)
  // and swap at completion.
  prog::PipelineDiagram& fill = p.append("fill");
  fill.connect(machine_, Endpoint::planeRead(0), Endpoint::cacheWrite(0));
  fill.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                        1, 0, 0, false};
  prog::DmaSpec& cw = fill.dmaAt(Endpoint::cacheWrite(0));
  cw = {"", 0, 1, static_cast<std::uint64_t>(n), 1, 0, 0, true};
  // Instruction 1: stream the cache through a doubling unit into plane 1.
  prog::PipelineDiagram& drain = p.append("drain");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId dbl = machine_.als(als).fus[0];
  drain.setFuOp(machine_, dbl, OpCode::kMul);
  drain.connect(machine_, Endpoint::cacheRead(0), Endpoint::fuInput(dbl, 0));
  drain.setConstInput(machine_, dbl, 1, 2.0);
  drain.connect(machine_, Endpoint::fuOutput(dbl), Endpoint::planeWrite(1));
  drain.dmaAt(Endpoint::cacheRead(0)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                         1, 0, 0, false};
  drain.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, static_cast<std::uint64_t>(n),
                                          1, 0, 0, false};
  drain.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  const std::vector<double> x = iota(n, 5.0, 1.0);
  node.writePlane(0, 0, x);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  const std::vector<double> out = node.readPlane(1, 0, n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 2.0 * x[static_cast<std::size_t>(i)]);
  }
}

TEST_F(SimTest, SequencerLoopRepeatsInstruction) {
  // Instruction 0 computes plane1[0] = plane0[0] + 1; instruction 1 copies
  // plane1[0] back to plane0[0] and loops 5 times.
  prog::Program p;
  prog::PipelineDiagram& inc = p.append("increment");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId add = machine_.als(als).fus[0];
  inc.setFuOp(machine_, add, OpCode::kAdd);
  inc.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(add, 0));
  inc.setConstInput(machine_, add, 1, 1.0);
  inc.connect(machine_, Endpoint::fuOutput(add), Endpoint::planeWrite(1));
  inc.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 1, 1, 0, 0, false};
  inc.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 1, 1, 0, 0, false};

  prog::PipelineDiagram& copy = p.append("copy-back");
  copy.connect(machine_, Endpoint::planeRead(1), Endpoint::planeWrite(0));
  copy.dmaAt(Endpoint::planeRead(1)) = {"", 0, 1, 1, 1, 0, 0, false};
  copy.dmaAt(Endpoint::planeWrite(0)) = {"", 0, 1, 1, 1, 0, 0, false};
  copy.seq = {arch::SeqOp::kLoop, 0, 0, 5};

  prog::PipelineDiagram& halt = p.append("halt");
  halt.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  const double zero[] = {0.0};
  node.writePlane(0, 0, zero);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(node.readPlaneWord(0, 0), 5.0);
  // 5 loop rounds x 2 instructions + halt.
  EXPECT_EQ(stats.instructions_executed, 11u);
}

TEST_F(SimTest, ConditionalBranchOnLatchedComparison) {
  // Repeatedly double plane0[0] until it exceeds 100, using the condition
  // latch and a BranchIf, then halt.  Starts at 1 -> 7 doublings (128).
  prog::Program p;
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId dbl = machine_.als(als).fus[0];
  const arch::FuId cmp = machine_.als(als).fus[1];

  prog::PipelineDiagram& step = p.append("double");
  step.setFuOp(machine_, dbl, OpCode::kMul);
  step.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(dbl, 0));
  step.setConstInput(machine_, dbl, 1, 2.0);
  step.connect(machine_, Endpoint::fuOutput(dbl), Endpoint::planeWrite(1));
  step.setFuOp(machine_, cmp, OpCode::kCmpLt);
  step.connect(machine_, Endpoint::fuOutput(dbl), Endpoint::fuInput(cmp, 0));
  step.setConstInput(machine_, cmp, 1, 100.0);  // value < 100 ?
  step.cond = prog::CondLatch{cmp, 1};
  step.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 1, 1, 0, 0, false};
  step.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 1, 1, 0, 0, false};

  prog::PipelineDiagram& copy = p.append("copy-back");
  copy.connect(machine_, Endpoint::planeRead(1), Endpoint::planeWrite(0));
  copy.dmaAt(Endpoint::planeRead(1)) = {"", 0, 1, 1, 1, 0, 0, false};
  copy.dmaAt(Endpoint::planeWrite(0)) = {"", 0, 1, 1, 1, 0, 0, false};
  copy.seq = {arch::SeqOp::kBranchIf, 0, 1, 0};

  prog::PipelineDiagram& halt = p.append("halt");
  halt.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  const double one[] = {1.0};
  node.writePlane(0, 0, one);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(node.readPlaneWord(0, 0), 128.0);
  EXPECT_TRUE(stats.halted);
}

TEST_F(SimTest, StridedAndTwoLevelDma) {
  // Gather every 3rd element, then a two-level (4 rows x 5 elements)
  // rectangle, through a pass unit.
  prog::Program p;
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId pass = machine_.als(als).fus[0];

  prog::PipelineDiagram& d = p.append("strided");
  d.setFuOp(machine_, pass, OpCode::kPass);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(pass, 0));
  d.connect(machine_, Endpoint::fuOutput(pass), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 3, 10, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 10, 1, 0, 0, false};

  prog::PipelineDiagram& rect = p.append("rect");
  rect.setFuOp(machine_, pass, OpCode::kPass);
  rect.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(pass, 0));
  rect.connect(machine_, Endpoint::fuOutput(pass), Endpoint::planeWrite(2));
  rect.dmaAt(Endpoint::planeRead(0)) = {"", 2, 1, 5, 4, 10, 0, false};
  rect.dmaAt(Endpoint::planeWrite(2)) = {"", 0, 1, 20, 1, 0, 0, false};
  rect.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  const std::vector<double> x = iota(64, 0.0, 1.0);
  node.writePlane(0, 0, x);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  const std::vector<double> strided = node.readPlane(1, 0, 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(strided[static_cast<std::size_t>(i)], 3.0 * i);
  }
  const std::vector<double> rect_out = node.readPlane(2, 0, 20);
  for (int r = 0; r < 4; ++r) {
    for (int e = 0; e < 5; ++e) {
      EXPECT_EQ(rect_out[static_cast<std::size_t>(r * 5 + e)],
                static_cast<double>(2 + 10 * r + e));
    }
  }
}

TEST_F(SimTest, PureDmaCopyWithoutFunctionUnits) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("memcpy");
  d.connect(machine_, Endpoint::planeRead(3), Endpoint::planeWrite(7));
  d.dmaAt(Endpoint::planeRead(3)) = {"", 4, 1, 16, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(7)) = {"", 0, 1, 16, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  node.writePlane(3, 4, iota(16, 100.0));
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(node.readPlane(7, 0, 16), iota(16, 100.0));
}

TEST_F(SimTest, BroadcastFanoutWritesMultiplePlanes) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("broadcast");
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::planeWrite(2));
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::planeWrite(3));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 8, 1, 0, 0, false};
  for (arch::PlaneId pl : {1, 2, 3}) {
    d.dmaAt(Endpoint::planeWrite(pl)) = {"", 0, 1, 8, 1, 0, 0, false};
  }
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  node.writePlane(0, 0, iota(8, 1.0));
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  for (arch::PlaneId pl : {1, 2, 3}) {
    EXPECT_EQ(node.readPlane(pl, 0, 8), iota(8, 1.0));
  }
}

TEST_F(SimTest, IntegerOpsOnCapableUnit) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("integer");
  const arch::AlsId als = firstDoublet(machine_);
  const arch::FuId iu = machine_.als(als).fus[0];  // integer-capable slot
  d.setFuOp(machine_, iu, OpCode::kAnd);
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::fuInput(iu, 0));
  d.setConstInput(machine_, iu, 1, 12.0);
  d.connect(machine_, Endpoint::fuOutput(iu), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  const std::vector<double> x{7.0, 8.0, 13.0, 15.0};
  node.writePlane(0, 0, x);
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;
  const std::vector<double> expect{4.0, 8.0, 12.0, 12.0};
  EXPECT_EQ(node.readPlane(1, 0, 4), expect);
}

TEST_F(SimTest, InstructionTimeoutReportsError) {
  // A pipeline whose write can never complete: write expects data but the
  // routed source is a disabled FU (bypass the checker to build it).
  prog::Program p;
  prog::PipelineDiagram& d = p.append("stuck");
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine_);
  mc::GenerateResult result = generator.generate(p);
  ASSERT_TRUE(result.ok);
  // Corrupt the microcode: clear the switch route feeding the write port.
  arch::MicrowordSpec spec(machine_);
  const int dst = machine_.destinationIndex(Endpoint::planeWrite(1));
  spec.set(result.exe.words[0], arch::MicrowordSpec::switchField(dst), 0);

  NodeSim node(machine_, {.max_cycles_per_instruction = 2000});
  node.load(result.exe);
  const sim::RunStats stats = node.run();
  EXPECT_TRUE(stats.error);
  EXPECT_NE(stats.error_message.find("did not complete"), std::string::npos);
}

TEST_F(SimTest, TraceSinkObservesFlowingValues) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("traced");
  d.connect(machine_, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  d.dmaAt(Endpoint::planeRead(0)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.dmaAt(Endpoint::planeWrite(1)) = {"", 0, 1, 4, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;

  NodeSim node(machine_);
  std::string err;
  ASSERT_TRUE(generateAndLoad(machine_, p, node, &err)) << err;
  node.writePlane(0, 0, iota(4, 9.0));

  std::vector<sim::TraceFrame> frames;
  node.setTraceSink([&frames](const sim::TraceFrame& f) { frames.push_back(f); });
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error);
  ASSERT_FALSE(frames.empty());
  // Cycle 0: the plane-read source emits element 0 (value 9).
  const int src = machine_.sourceIndex(Endpoint::planeRead(0));
  EXPECT_TRUE(frames[0].source_tokens[static_cast<std::size_t>(src)].valid);
  EXPECT_EQ(frames[0].source_tokens[static_cast<std::size_t>(src)].value, 9.0);
}

}  // namespace
}  // namespace nsc
