// ProgramVerifier tests: the static-analysis pass over lowered compiled
// programs (sim/verify.h).
//
// The load-bearing contracts:
//   * every golden program verifies clean, and the Figure-11 sweep proves a
//     steady-state window wider than the legacy fixed 64-cycle block;
//   * each fault-proving error (kDmaBounds / kStarvedWrite / kUnderfedWrite
//     / kStarvedCond) predicts exactly the FaultKind both engines report at
//     runtime — no false alarms, no missed faults (test_property.cpp sweeps
//     the same contract over randomly mutated microcode);
//   * ring over-subscription is an error of the hardware-infeasible class:
//     rejected statically, yet simulated deterministically (predicted fault
//     kNone);
//   * the hypercube exchange-plan analysis flags link contention and
//     out-of-range nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/machine.h"
#include "cfd/jacobi_program.h"
#include "microcode/generator.h"
#include "program/program.h"
#include "sim/compiled.h"
#include "sim/node.h"
#include "sim/verify.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using arch::Endpoint;
using arch::Machine;
using arch::OpCode;
using sim::FaultKind;
using sim::NodeSim;
using sim::VerifyCode;

std::shared_ptr<const sim::CompiledProgram> compileFor(
    const Machine& machine, const prog::Program& program,
    bool run_checker = true) {
  mc::Generator generator(machine);
  mc::GenerateOptions options;
  options.run_checker = run_checker;
  const mc::GenerateResult gen = generator.generate(program, options);
  EXPECT_TRUE(gen.ok) << gen.diagnostics.format();
  if (!gen.ok) return nullptr;
  return sim::CompiledProgram::compile(machine, gen.exe);
}

bool hasError(const sim::VerifyReport& report, VerifyCode code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [code](const sim::VerifyDiagnostic& d) {
                       return d.code == code &&
                              d.severity == check::Severity::kError;
                     });
}

// Every fault-proving error in the report must predict the same FaultKind;
// returns it (kNone when the report proves no fault).
FaultKind provenFault(const sim::VerifyReport& report) {
  FaultKind proven = FaultKind::kNone;
  for (const sim::VerifyDiagnostic& d : report.diagnostics) {
    if (d.severity != check::Severity::kError) continue;
    const FaultKind kind = sim::predictedFault(d.code);
    if (kind == FaultKind::kNone) continue;
    if (proven == FaultKind::kNone) proven = kind;
  }
  return proven;
}

// ---------------------------------------------------------------------------
// Golden programs verify clean.
// ---------------------------------------------------------------------------

TEST(ProgramVerifier, Figure11JacobiVerifiesCleanWithWideWindows) {
  const Machine machine;
  for (const bool convergence : {false, true}) {
    cfd::JacobiBuildOptions options;
    options.grid = {8, 8, 8};
    options.h = 1.0 / 7.0;
    options.convergence_mode = convergence;
    options.fixed_sweeps = 6;
    options.tol = 1e-3;
    const cfd::JacobiProgram jacobi(machine, options);
    const auto program = compileFor(machine, jacobi.program());
    ASSERT_NE(program, nullptr);
    ASSERT_NE(program->verify, nullptr);
    EXPECT_TRUE(program->verify->clean())
        << (convergence ? "convergence" : "fixed") << ":\n"
        << program->verify->format();
    ASSERT_EQ(program->verify->instrs.size(), program->instrs.size());
    // The embedded per-instruction windows are exactly the report's.
    std::uint32_t widest = 0;
    for (std::size_t i = 0; i < program->instrs.size(); ++i) {
      EXPECT_EQ(program->instrs[i].steady_window,
                program->verify->instrs[i].steady_window)
          << "instr " << i;
      EXPECT_GE(program->instrs[i].steady_window, sim::kFallbackSteadyBlock);
      EXPECT_LE(program->instrs[i].steady_window, sim::kMaxSteadyBlock);
      widest = std::max(widest, program->instrs[i].steady_window);
    }
    // The 512-element sweep proves a window beyond the legacy fixed block.
    EXPECT_GT(widest, sim::kFallbackSteadyBlock);
  }
}

// ---------------------------------------------------------------------------
// Fault-proving errors match the engines.
// ---------------------------------------------------------------------------

// A DMA pattern past the simulated plane capacity: proven kDmaBounds, and
// both engines fault with exactly that kind.
TEST(ProgramVerifier, OobDmaProvenAndMatchesEngineFault) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("overrun");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec spec;
  spec.base = 0;
  spec.stride = 1;
  spec.count = machine.config().sim_plane_words + 1;
  d.dmaAt(Endpoint::planeRead(0)) = spec;
  d.dmaAt(Endpoint::planeWrite(1)) = spec;
  d.seq.op = arch::SeqOp::kHalt;

  const auto program = compileFor(machine, p);
  ASSERT_NE(program, nullptr);
  const sim::VerifyReport& report = *program->verify;
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(hasError(report, VerifyCode::kDmaBounds)) << report.format();
  EXPECT_FALSE(report.firstError().empty());
  EXPECT_NE(report.firstError().find("dma-bounds"), std::string::npos);
  ASSERT_FALSE(report.instrs.empty());
  EXPECT_FALSE(report.instrs[0].clean);
  // Unproven instructions stay at the conservative block.
  EXPECT_EQ(report.instrs[0].steady_window, sim::kFallbackSteadyBlock);
  EXPECT_EQ(provenFault(report), FaultKind::kDmaBounds);

  // The diagnostic bridge renders as an error in the checker's stream.
  const check::DiagnosticList diags = report.toDiagnostics();
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), report.errorCount());

  // Both engines report the proven kind.
  for (const bool use_compiled : {false, true}) {
    sim::NodeSim::Options options;
    options.use_compiled = use_compiled;
    NodeSim node(machine, options);
    node.load(program);
    const sim::RunStats run = node.run();
    EXPECT_TRUE(run.error);
    EXPECT_EQ(run.fault, FaultKind::kDmaBounds)
        << (use_compiled ? "compiled" : "legacy");
  }
}

// A write engine programmed for more elements than its stream delivers:
// proven kUnderfedWrite (predicting a timeout), and both engines time out.
TEST(ProgramVerifier, UnderfedWriteProvenAndTimesOut) {
  const Machine machine;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("starved");
  d.connect(machine, Endpoint::planeRead(0), Endpoint::planeWrite(1));
  prog::DmaSpec read;
  read.base = 0;
  read.stride = 1;
  read.count = 4;
  prog::DmaSpec write = read;
  write.count = 8;  // four tokens will never arrive
  d.dmaAt(Endpoint::planeRead(0)) = read;
  d.dmaAt(Endpoint::planeWrite(1)) = write;
  d.seq.op = arch::SeqOp::kHalt;

  // The checker rejects the stream mismatch at diagram level; the verifier
  // must catch the same program when it arrives as bare microcode.
  const auto program = compileFor(machine, p, /*run_checker=*/false);
  ASSERT_NE(program, nullptr);
  const sim::VerifyReport& report = *program->verify;
  EXPECT_TRUE(hasError(report, VerifyCode::kUnderfedWrite)) << report.format();
  EXPECT_EQ(provenFault(report), FaultKind::kTimeout);
  // The offending window is exact: 4 tokens, one registered hop late.
  bool found = false;
  for (const sim::VerifyDiagnostic& diag : report.diagnostics) {
    if (diag.code != VerifyCode::kUnderfedWrite) continue;
    found = true;
    EXPECT_EQ(diag.endpoint, Endpoint::planeWrite(1));
    EXPECT_TRUE(diag.window.any);
    EXPECT_EQ(diag.window.first, 1u);
    EXPECT_EQ(diag.window.last, 4u);
    EXPECT_EQ(diag.window.length(), 4u);
    EXPECT_TRUE(diag.window.tagged);
  }
  EXPECT_TRUE(found);

  for (const bool use_compiled : {false, true}) {
    sim::NodeSim::Options options;
    options.use_compiled = use_compiled;
    options.max_cycles_per_instruction = 500;
    NodeSim node(machine, options);
    node.load(program);
    const sim::RunStats run = node.run();
    EXPECT_TRUE(run.error);
    EXPECT_EQ(run.fault, FaultKind::kTimeout)
        << (use_compiled ? "compiled" : "legacy");
  }
}

// A condition latch armed on a functional unit that never produces a value:
// proven kStarvedCond, and the latch never fires so both engines time out.
TEST(ProgramVerifier, StarvedCondProvenAndTimesOut) {
  const Machine machine;
  const int n = 16;
  prog::Program p;
  prog::PipelineDiagram& d = p.append("latched");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId mul = machine.als(als).fus[0];
  d.setFuOp(machine, mul, OpCode::kMul);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine, mul, 1, 2.0);
  d.connect(machine, Endpoint::fuOutput(mul), Endpoint::planeWrite(1));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeWrite(1)}) {
    prog::DmaSpec& dma = d.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
  }
  // The latch watches a unit that is never programmed: its output stream
  // never carries a valid token, so the latch can never observe an end.
  const arch::FuId silent = machine.als(als).fus[1];
  d.cond = prog::CondLatch{silent, 1};
  d.seq.op = arch::SeqOp::kHalt;

  const auto program = compileFor(machine, p, /*run_checker=*/false);
  ASSERT_NE(program, nullptr);
  const sim::VerifyReport& report = *program->verify;
  EXPECT_TRUE(hasError(report, VerifyCode::kStarvedCond)) << report.format();
  EXPECT_EQ(provenFault(report), FaultKind::kTimeout);

  for (const bool use_compiled : {false, true}) {
    sim::NodeSim::Options options;
    options.use_compiled = use_compiled;
    options.max_cycles_per_instruction = 500;
    NodeSim node(machine, options);
    node.load(program);
    node.writePlane(0, 0, test::iota(n, 1.0, 1.0));
    const sim::RunStats run = node.run();
    EXPECT_TRUE(run.error);
    EXPECT_EQ(run.fault, FaultKind::kTimeout)
        << (use_compiled ? "compiled" : "legacy");
  }
}

// ---------------------------------------------------------------------------
// Hardware-infeasible errors: rejected statically, no runtime fault claim.
// ---------------------------------------------------------------------------

// Ring over-subscription cannot be encoded through the generator (microword
// field widths are derived from the same limits), so it is tested the way a
// hostile or corrupted lowering would present it: a hand-built compiled
// instruction whose delay queue exceeds the register-file ring.
TEST(ProgramVerifier, RingOverSubscriptionIsInfeasibilityError) {
  const Machine machine;
  sim::CompiledProgram program;
  sim::CompiledInstr ci;
  sim::CompiledFu fu;
  fu.fu = 4;
  fu.rfq_len =
      static_cast<std::uint32_t>(machine.config().rf_max_delay) + 1;
  ci.fus.push_back(fu);
  program.instrs.push_back(ci);
  program.plans.emplace_back();

  const sim::VerifyReport report =
      sim::ProgramVerifier(machine).verify(program);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(hasError(report, VerifyCode::kRingOverSubscribed))
      << report.format();
  // Infeasibility, not a fault proof: the simulator sizes its arenas from
  // the program and would still run this deterministically.
  EXPECT_EQ(sim::predictedFault(VerifyCode::kRingOverSubscribed),
            FaultKind::kNone);
  EXPECT_EQ(provenFault(report), FaultKind::kNone);
  ASSERT_EQ(report.instrs.size(), 1u);
  EXPECT_FALSE(report.instrs[0].clean);
  EXPECT_EQ(report.instrs[0].steady_window, sim::kFallbackSteadyBlock);
}

// ---------------------------------------------------------------------------
// Exchange-plan analysis.
// ---------------------------------------------------------------------------

TEST(ExchangePlan, DisjointMessagesAreClean) {
  const std::vector<sim::ExchangeMessage> plan = {{0, 1, 64}, {2, 3, 64}};
  EXPECT_TRUE(sim::verifyExchangePlan(2, plan).empty());
}

TEST(ExchangePlan, SharedLinkIsReportedAsContention) {
  // Two messages with the same source and destination claim every hop of
  // the same e-cube path.
  const std::vector<sim::ExchangeMessage> plan = {{0, 3, 64}, {0, 3, 32}};
  const auto diags = sim::verifyExchangePlan(2, plan);
  ASSERT_FALSE(diags.empty());
  for (const sim::VerifyDiagnostic& d : diags) {
    EXPECT_EQ(d.code, VerifyCode::kExchangeContention);
    EXPECT_EQ(d.severity, check::Severity::kWarning);
    EXPECT_NE(d.message.find("0->3"), std::string::npos);
  }
}

TEST(ExchangePlan, OutOfRangeNodeIsAnError) {
  const std::vector<sim::ExchangeMessage> plan = {{5, 0, 8}};
  const auto diags = sim::verifyExchangePlan(2, plan);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, check::Severity::kError);
  EXPECT_NE(diags[0].message.find("outside"), std::string::npos);
}

TEST(ExchangeSchedule, ChainedForwardsAreClean) {
  // Phase 0 delivers 0 -> 1; phase 1 forwards from node 1 (fed) and phase 2
  // forwards the relay on from node 2 (fed by phase 1): a legal multi-hop
  // staging chain.
  const std::vector<std::vector<sim::ExchangeMessage>> phases = {
      {{0, 1, 64}},
      {{1, 2, 64, /*forward=*/true}},
      {{2, 3, 64, /*forward=*/true}},
  };
  EXPECT_TRUE(sim::verifyExchangeSchedule(2, phases).empty());
}

TEST(ExchangeSchedule, ForwardWithoutPriorDeliveryIsDangling) {
  // Node 2 never received anything before phase 1 asks it to forward.
  const std::vector<std::vector<sim::ExchangeMessage>> phases = {
      {{0, 1, 64}},
      {{2, 3, 64, /*forward=*/true}},
  };
  const auto diags = sim::verifyExchangeSchedule(2, phases);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, VerifyCode::kExchangeDangling);
  EXPECT_EQ(diags[0].severity, check::Severity::kError);
  EXPECT_EQ(diags[0].instruction, 1);  // the offending phase
  EXPECT_NE(diags[0].message.find("no earlier phase"), std::string::npos);
}

TEST(ExchangeSchedule, FirstPhaseForwardIsAlwaysDangling) {
  // A forward in phase 0 can never have been fed — deliveries only become
  // visible after the phase barrier, so even a same-phase 0 -> 1 delivery
  // does not feed the 1 -> 2 forward.
  const std::vector<std::vector<sim::ExchangeMessage>> phases = {
      {{0, 1, 64}, {1, 2, 64, /*forward=*/true}},
  };
  const auto diags = sim::verifyExchangeSchedule(2, phases);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, VerifyCode::kExchangeDangling);
  EXPECT_EQ(diags[0].instruction, 0);
}

TEST(ExchangeSchedule, PerPhaseFindingsCarryThePhaseIndex) {
  // Phase 1 has both a contention warning (duplicated route) and an
  // out-of-range error; both must be tagged with phase 1, and the schedule
  // must still track deliveries across the noisy phase.
  const std::vector<std::vector<sim::ExchangeMessage>> phases = {
      {{0, 1, 64}},
      {{0, 3, 64}, {0, 3, 32}, {5, 0, 8}},
      {{1, 2, 16, /*forward=*/true}},
  };
  const auto diags = sim::verifyExchangeSchedule(2, phases);
  ASSERT_FALSE(diags.empty());
  for (const sim::VerifyDiagnostic& d : diags) {
    EXPECT_EQ(d.code, VerifyCode::kExchangeContention);
    EXPECT_EQ(d.instruction, 1) << d.format();
  }
}

// ---------------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------------

TEST(VerifyReport, DiagnosticFormatNamesCodeInstructionAndEndpoint) {
  sim::VerifyDiagnostic d;
  d.code = VerifyCode::kDmaBounds;
  d.severity = check::Severity::kError;
  d.instruction = 3;
  d.endpoint = Endpoint::planeRead(0);
  d.message = "walks past the plane";
  const std::string text = d.format();
  EXPECT_NE(text.find("[error]"), std::string::npos);
  EXPECT_NE(text.find("dma-bounds"), std::string::npos);
  EXPECT_NE(text.find("instr 3"), std::string::npos);
  EXPECT_NE(text.find("plane0.read"), std::string::npos);
  EXPECT_NE(text.find("walks past the plane"), std::string::npos);
}

TEST(VerifyReport, CycleWindowLengthAndUnbounded) {
  sim::CycleWindow none;
  EXPECT_EQ(none.length(), 0u);
  EXPECT_FALSE(none.unbounded());
  const sim::CycleWindow finite{2, 9, true, true};
  EXPECT_EQ(finite.length(), 8u);
  EXPECT_FALSE(finite.unbounded());
  const sim::CycleWindow forever{0, sim::CycleWindow::kForever, true, false};
  EXPECT_TRUE(forever.unbounded());
  EXPECT_EQ(forever.length(), sim::CycleWindow::kForever);
}

}  // namespace
}  // namespace nsc
