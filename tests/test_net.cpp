// The network edge: frame codec, wire JSON codecs, the poll-loop server's
// protocol-error discipline, torn-connection future settlement, the
// end-to-end transport-fidelity golden, and the docs/PROTOCOL.md lockstep
// check (the doc is normative; this suite fails when code and doc drift).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/wire.h"
#include "nsc/scripts.h"
#include "service/service.h"
#include "sim/verify.h"

namespace nsc {
namespace {

// ---------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripsByteAtATime) {
  net::Frame frame;
  frame.type = static_cast<std::uint16_t>(net::FrameType::kGenerateAndRun);
  frame.request_id = 0x1122334455667788ULL;
  frame.payload = "{\"script\":\"pipeline \\\"p\\\"\\n\"}";
  const std::string bytes = net::encodeFrame(frame);
  ASSERT_EQ(bytes.size(), net::kHeaderBytes + frame.payload.size());

  net::FrameReader reader;
  net::Frame out;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(&bytes[i], 1);
    ASSERT_EQ(reader.next(out), net::FrameReader::Next::kNeedMore) << i;
  }
  reader.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(reader.next(out), net::FrameReader::Next::kFrame);
  EXPECT_EQ(out.version, net::kProtocolVersion);
  EXPECT_EQ(out.type, frame.type);
  EXPECT_EQ(out.request_id, frame.request_id);
  EXPECT_EQ(out.payload, frame.payload);
  EXPECT_EQ(reader.next(out), net::FrameReader::Next::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  std::string bytes;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    net::Frame frame;
    frame.type = static_cast<std::uint16_t>(net::FrameType::kReply);
    frame.request_id = id;
    frame.payload = std::string(static_cast<std::size_t>(id) * 10, 'x');
    net::appendFrame(bytes, frame);
  }
  net::FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  net::Frame out;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_EQ(reader.next(out), net::FrameReader::Next::kFrame);
    EXPECT_EQ(out.request_id, id);
    EXPECT_EQ(out.payload.size(), static_cast<std::size_t>(id) * 10);
  }
  EXPECT_EQ(reader.next(out), net::FrameReader::Next::kNeedMore);
}

TEST(FrameTest, BadMagicIsStickyAndDetectedEvenOnPartialHeader) {
  net::FrameReader reader;
  net::Frame out;
  reader.feed("NSCX", 4);  // wrong fourth byte, shorter than a header
  EXPECT_EQ(reader.next(out), net::FrameReader::Next::kError);
  EXPECT_EQ(reader.error(), net::FrameError::kBadMagic);
  // Sticky: feeding a valid frame afterwards cannot resynchronize.
  const std::string valid = net::encodeFrame(net::Frame{});
  reader.feed(valid.data(), valid.size());
  EXPECT_EQ(reader.next(out), net::FrameReader::Next::kError);
}

TEST(FrameTest, OversizedDeclaredLengthIsRejectedBeforeBuffering) {
  net::FrameReader reader(/*max_payload=*/1024);
  net::Frame frame;
  frame.type = static_cast<std::uint16_t>(net::FrameType::kOpenSession);
  frame.payload.assign(2048, 'p');
  const std::string bytes = net::encodeFrame(frame);
  // Header alone (no payload bytes) is enough to reject.
  net::Frame out;
  reader.feed(bytes.data(), net::kHeaderBytes);
  EXPECT_EQ(reader.next(out), net::FrameReader::Next::kError);
  EXPECT_EQ(reader.error(), net::FrameError::kOversized);
}

TEST(FrameTest, TypeTableCoversRequestsAndServerTypes) {
  const auto& types = net::allFrameTypes();
  ASSERT_EQ(types.size(), 9u);  // 7 requests + Reply + ProtocolError
  for (const auto& [code, name] : types) {
    EXPECT_TRUE(net::frameTypeKnown(code)) << name;
    EXPECT_STRNE(name, "?");
  }
  EXPECT_FALSE(net::frameTypeKnown(0));
  EXPECT_FALSE(net::frameTypeKnown(99));
}

// ---------------------------------------------------------------------------
// Wire codecs.
// ---------------------------------------------------------------------------

TEST(WireTest, WordHexRoundTripsEveryValueClassBitExactly) {
  const std::vector<double> words = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -2.5e307 / 3.0,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
  };
  const std::string hex = net::encodeWordsHex(words);
  EXPECT_EQ(hex.size(), words.size() * 16);
  std::vector<double> back;
  ASSERT_TRUE(net::decodeWordsHex(hex, back));
  ASSERT_EQ(back.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &words[i], 8);
    std::memcpy(&b, &back[i], 8);
    EXPECT_EQ(a, b) << i;  // bit pattern, not value (NaN != NaN)
  }
  std::vector<double> reject;
  EXPECT_FALSE(net::decodeWordsHex("0123", reject));        // not *16
  EXPECT_FALSE(net::decodeWordsHex("000000000000000G", reject));  // bad digit
  EXPECT_FALSE(net::decodeWordsHex("000000000000000F", reject));  // upper case
}

TEST(WireTest, EveryRequestTypeRoundTripsThroughJson) {
  std::vector<svc::Request> requests;
  requests.push_back(svc::OpenSession{"pipeline \"p\"\n"});
  svc::SessionCommand command;
  command.session = 7;
  command.script = "check\n";
  command.run = true;
  command.inputs.push_back(svc::PlaneImage{2, 5, {1.5, -0.25, 1.0 / 3.0}});
  command.outputs.push_back(svc::PlaneRange{4, 161, 366});
  requests.push_back(command);
  requests.push_back(svc::CloseSession{9});
  requests.push_back(svc::SubmitSession{"undo\n"});
  svc::GenerateAndRun gen;
  gen.script = "redo\n";
  gen.inputs.push_back(svc::PlaneImage{0, 0, {2.0, 4.0}});
  gen.outputs.push_back(svc::PlaneRange{9, 0, 1});
  requests.push_back(gen);
  requests.push_back(svc::RunEnsemble{"check\n", 6, 2});
  svc::RunSystemPhases phases;
  phases.script = "check\n";
  phases.dimension = 3;
  phases.phases = 2;
  phases.node_lanes = 4;
  phases.router.message_startup_cycles = 11;
  phases.router.hop_latency_cycles = 3;
  phases.router.words_per_cycle = 0.5;
  requests.push_back(phases);

  svc::Admission admission;
  admission.priority = svc::Priority::kBatch;
  admission.deadline_us = 1234;

  for (const svc::Request& request : requests) {
    const net::FrameType type = net::frameTypeFor(request);
    const common::Json payload = net::requestToJson(request, admission);
    auto decoded = net::requestFromJson(
        static_cast<std::uint16_t>(type), payload);
    ASSERT_TRUE(decoded.isOk()) << decoded.message();
    EXPECT_EQ(decoded.value().request.index(), request.index());
    ASSERT_TRUE(decoded.value().admission.priority.has_value());
    EXPECT_EQ(*decoded.value().admission.priority, svc::Priority::kBatch);
    EXPECT_EQ(decoded.value().admission.deadline_us, 1234);
    // Re-encoding the decoded request is byte-identical: nothing lossy.
    EXPECT_EQ(net::requestToJson(decoded.value().request,
                                 decoded.value().admission)
                  .dump(),
              payload.dump());
  }
}

TEST(WireTest, RequestDecodeRejectsTypeErrorsWithFieldMessages) {
  const std::uint16_t open =
      static_cast<std::uint16_t>(net::FrameType::kOpenSession);
  const std::uint16_t cmd =
      static_cast<std::uint16_t>(net::FrameType::kSessionCommand);
  EXPECT_FALSE(net::requestFromJson(open, common::Json(2.0)).isOk());
  EXPECT_FALSE(
      net::requestFromJson(static_cast<std::uint16_t>(net::FrameType::kReply),
                           common::Json(common::JsonObject{}))
          .isOk());
  {  // session is required
    common::JsonObject obj;
    obj["script"] = "check\n";
    auto result = net::requestFromJson(cmd, common::Json(std::move(obj)));
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.message().find("session"), std::string::npos);
  }
  {  // wrong JSON type for a field
    common::JsonObject obj;
    obj["script"] = 42;
    auto result = net::requestFromJson(open, common::Json(std::move(obj)));
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.message().find("script"), std::string::npos);
  }
  {  // bad plane-word hex
    common::JsonObject image;
    image["plane"] = 0;
    image["base"] = 0;
    image["values"] = "zzzz";
    common::JsonObject obj;
    obj["session"] = 1;
    common::JsonArray inputs;
    inputs.emplace_back(std::move(image));
    obj["inputs"] = std::move(inputs);
    EXPECT_FALSE(net::requestFromJson(cmd, common::Json(std::move(obj))).isOk());
  }
}

TEST(WireTest, ProtocolErrorPayloadRoundTrips) {
  const net::ProtocolError error{"bad-json", "unterminated string"};
  const net::ProtocolError back =
      net::protocolErrorFromJson(net::protocolErrorToJson(error));
  EXPECT_EQ(back.code, error.code);
  EXPECT_EQ(back.message, error.message);
  EXPECT_FALSE(net::protocolErrorCodes().empty());
}

std::vector<svc::PlaneImage> figure11Inputs() {
  std::vector<svc::PlaneImage> inputs;
  std::vector<double> u(640);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = 0.25 * static_cast<double>((i * 37) % 11);
  }
  for (arch::PlaneId plane = 0; plane < 4; ++plane) {
    inputs.push_back(svc::PlaneImage{plane, 0, u});
  }
  std::vector<double> f(640);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = 0.125 * static_cast<double>((i * 13) % 7);
  }
  inputs.push_back(svc::PlaneImage{8, 0, f});
  inputs.push_back(svc::PlaneImage{10, 0, std::vector<double>(640, 1.0)});
  return inputs;
}

svc::GenerateAndRun figure11Request() {
  svc::GenerateAndRun request;
  request.script = figure11SessionScript();
  request.inputs = figure11Inputs();
  request.outputs = {svc::PlaneRange{4, 161, 366}, svc::PlaneRange{9, 0, 1}};
  return request;
}

TEST(WireTest, RealReplyRoundTripsThroughJsonIncludingOkAndOutputs) {
  svc::ServiceOptions options;
  options.shards = 1;
  svc::WorkbenchService service(options);
  const svc::ServiceReply reply = service.submit(figure11Request()).get();
  ASSERT_TRUE(reply.ok());
  ASSERT_FALSE(reply.outputs.empty());
  ASSERT_NE(reply.verify, nullptr);

  auto decoded = net::replyFromJson(net::replyToJson(reply));
  ASSERT_TRUE(decoded.isOk()) << decoded.message();
  const svc::ServiceReply& back = decoded.value();
  EXPECT_EQ(back.ok(), reply.ok());  // complete_ travelled
  EXPECT_EQ(back.outputs, reply.outputs);
  EXPECT_EQ(back.run.total_cycles, reply.run.total_cycles);
  EXPECT_EQ(back.run.fu_launches, reply.run.fu_launches);
  EXPECT_EQ(back.session.commands, reply.session.commands);
  EXPECT_EQ(back.stats.shard, reply.stats.shard);
  ASSERT_NE(back.verify, nullptr);
  EXPECT_EQ(back.verify->diagnostics.size(), reply.verify->diagnostics.size());
  // Full fidelity, stated as bytes: re-encoding the decoded reply
  // reproduces the original document exactly.
  EXPECT_EQ(net::replyToJson(back).dump(), net::replyToJson(reply).dump());
  // And the golden form strips exactly the documented fields.
  const common::Json golden = net::deterministicReplyJson(reply);
  for (const std::string& field : net::nondeterministicStatsFields()) {
    EXPECT_FALSE(golden.at("stats").has(field)) << field;
  }
}

TEST(WireTest, RejectedReplyKeepsTypedRejectCode) {
  svc::ServiceOptions options;
  options.shards = 1;
  svc::WorkbenchService service(options);
  const svc::ServiceReply reply =
      service.submit(svc::CloseSession{999}).get();
  EXPECT_TRUE(reply.rejected());
  auto decoded = net::replyFromJson(net::replyToJson(reply));
  ASSERT_TRUE(decoded.isOk()) << decoded.message();
  EXPECT_TRUE(decoded.value().rejected());
  EXPECT_EQ(decoded.value().stats.rejected, svc::Reject::kUnknownSession);
  EXPECT_EQ(decoded.value().ok(), reply.ok());
  EXPECT_EQ(decoded.value().status.message(), reply.status.message());
}

// ---------------------------------------------------------------------------
// Server: protocol-error discipline over real sockets.
// ---------------------------------------------------------------------------

// Blocking raw socket speaking frames directly (the hostile client the
// protocol-error tests need; nsc::Client is the well-behaved one).
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    timeval tv{};
    tv.tv_sec = 20;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawClient() { close(); }
  bool connected() const { return connected_; }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool sendBytes(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Reads one frame; false on EOF/timeout/desync.
  bool readFrame(net::Frame& out) {
    char buf[4096];
    for (;;) {
      switch (reader_.next(out)) {
        case net::FrameReader::Next::kFrame: return true;
        case net::FrameReader::Next::kError: return false;
        case net::FrameReader::Next::kNeedMore: break;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      reader_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  bool readEof() {
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  net::FrameReader reader_;
};

net::ProtocolError errorPayload(const net::Frame& frame) {
  auto parsed = common::Json::parse(frame.payload);
  EXPECT_TRUE(parsed.isOk());
  return parsed.isOk() ? net::protocolErrorFromJson(parsed.value())
                       : net::ProtocolError{};
}

std::string submitFrame(std::uint64_t id, const std::string& script) {
  net::Frame frame;
  frame.type = static_cast<std::uint16_t>(net::FrameType::kSubmitSession);
  frame.request_id = id;
  frame.payload = net::requestToJson(svc::SubmitSession{script}).dump();
  return net::encodeFrame(frame);
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    svc::ServiceOptions options;
    options.shards = 2;
    options.queue_capacity = 32;
    service_ = std::make_unique<svc::WorkbenchService>(options);
    net::ServerOptions server_options;
    server_options.max_payload = 1 << 20;
    server_ = std::make_unique<net::Server>(*service_, server_options);
    const common::Status status = server_->start();
    ASSERT_TRUE(status.isOk()) << status.message();
    ASSERT_NE(server_->port(), 0);
  }

  // Proves the server still serves: a fresh connection gets a real reply.
  void expectServerHealthy() {
    RawClient probe(server_->port());
    ASSERT_TRUE(probe.connected());
    ASSERT_TRUE(probe.sendBytes(submitFrame(77, "pipeline \"ok\"\n")));
    net::Frame reply;
    ASSERT_TRUE(probe.readFrame(reply));
    EXPECT_EQ(reply.type, static_cast<std::uint16_t>(net::FrameType::kReply));
    EXPECT_EQ(reply.request_id, 77u);
  }

  std::unique_ptr<svc::WorkbenchService> service_;
  std::unique_ptr<net::Server> server_;
};

TEST_F(ServerTest, BadMagicGetsTypedErrorThenClose) {
  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.sendBytes("GET / HTTP/1.1\r\n\r\n"));
  net::Frame frame;
  ASSERT_TRUE(client.readFrame(frame));
  EXPECT_EQ(frame.type,
            static_cast<std::uint16_t>(net::FrameType::kProtocolError));
  EXPECT_EQ(frame.request_id, 0u);  // stream-level: no frame to blame
  EXPECT_EQ(errorPayload(frame).code, "bad-magic");
  EXPECT_TRUE(client.readEof());
  expectServerHealthy();
}

TEST_F(ServerTest, OversizedLengthPrefixGetsTypedErrorThenClose) {
  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());
  net::Frame huge;
  huge.type = static_cast<std::uint16_t>(net::FrameType::kOpenSession);
  huge.request_id = 5;
  std::string header = net::encodeFrame(huge);
  // Patch the length prefix to 2 MiB (above the server's 1 MiB bound)
  // without actually sending a payload — the declared length alone must
  // trigger the refusal.
  const std::uint32_t declared = 2u << 20;
  header[16] = static_cast<char>(declared & 0xff);
  header[17] = static_cast<char>((declared >> 8) & 0xff);
  header[18] = static_cast<char>((declared >> 16) & 0xff);
  header[19] = static_cast<char>((declared >> 24) & 0xff);
  ASSERT_TRUE(client.sendBytes(header));
  net::Frame frame;
  ASSERT_TRUE(client.readFrame(frame));
  EXPECT_EQ(frame.type,
            static_cast<std::uint16_t>(net::FrameType::kProtocolError));
  EXPECT_EQ(errorPayload(frame).code, "oversized");
  EXPECT_TRUE(client.readEof());
  expectServerHealthy();
}

TEST_F(ServerTest, TruncatedFrameThenDisconnectLeavesServerServing) {
  {
    RawClient client(server_->port());
    ASSERT_TRUE(client.connected());
    // A correct prefix of a frame: magic + half the header, then gone.
    const std::string valid = submitFrame(3, "check\n");
    ASSERT_TRUE(client.sendBytes(valid.substr(0, 10)));
    client.close();
  }
  expectServerHealthy();
}

TEST_F(ServerTest, PayloadErrorsKeepTheConnectionOpen) {
  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());

  {  // garbage JSON
    net::Frame frame;
    frame.type = static_cast<std::uint16_t>(net::FrameType::kOpenSession);
    frame.request_id = 21;
    frame.payload = "{not json";
    ASSERT_TRUE(client.sendBytes(net::encodeFrame(frame)));
    net::Frame reply;
    ASSERT_TRUE(client.readFrame(reply));
    EXPECT_EQ(reply.type,
              static_cast<std::uint16_t>(net::FrameType::kProtocolError));
    EXPECT_EQ(reply.request_id, 21u);
    EXPECT_EQ(errorPayload(reply).code, "bad-json");
  }
  {  // unknown frame type
    net::Frame frame;
    frame.type = 42;
    frame.request_id = 22;
    frame.payload = "{}";
    ASSERT_TRUE(client.sendBytes(net::encodeFrame(frame)));
    net::Frame reply;
    ASSERT_TRUE(client.readFrame(reply));
    EXPECT_EQ(reply.request_id, 22u);
    EXPECT_EQ(errorPayload(reply).code, "unknown-type");
  }
  {  // wrong protocol version
    net::Frame frame;
    frame.version = 9;
    frame.type = static_cast<std::uint16_t>(net::FrameType::kOpenSession);
    frame.request_id = 23;
    frame.payload = "{}";
    ASSERT_TRUE(client.sendBytes(net::encodeFrame(frame)));
    net::Frame reply;
    ASSERT_TRUE(client.readFrame(reply));
    EXPECT_EQ(reply.request_id, 23u);
    EXPECT_EQ(errorPayload(reply).code, "bad-version");
  }
  {  // well-formed JSON, type-invalid request
    net::Frame frame;
    frame.type = static_cast<std::uint16_t>(net::FrameType::kSessionCommand);
    frame.request_id = 24;
    frame.payload = "{\"script\": 42}";  // missing session, wrong type
    ASSERT_TRUE(client.sendBytes(net::encodeFrame(frame)));
    net::Frame reply;
    ASSERT_TRUE(client.readFrame(reply));
    EXPECT_EQ(reply.request_id, 24u);
    EXPECT_EQ(errorPayload(reply).code, "bad-request");
  }

  // Same connection, same socket: a valid request still gets served.
  ASSERT_TRUE(client.sendBytes(submitFrame(25, "pipeline \"after\"\n")));
  net::Frame reply;
  ASSERT_TRUE(client.readFrame(reply));
  EXPECT_EQ(reply.type, static_cast<std::uint16_t>(net::FrameType::kReply));
  EXPECT_EQ(reply.request_id, 25u);
}

TEST_F(ServerTest, MalformedStormLeavesOtherConnectionsUnaffected) {
  // A healthy session holds its connection across a storm of hostile ones.
  ClientOptions options;
  options.port = server_->port();
  Client healthy(options);
  auto opened = healthy.openSession("pipeline \"storm\"\n");
  ASSERT_TRUE(opened.isOk()) << opened.message();
  const std::uint64_t session = opened.value().stats.session;

  for (int i = 0; i < 8; ++i) {
    RawClient hostile(server_->port());
    ASSERT_TRUE(hostile.connected());
    ASSERT_TRUE(hostile.sendBytes("\xff\xff\xff\xff garbage"));
    net::Frame frame;
    EXPECT_TRUE(hostile.readFrame(frame));
  }

  svc::SessionCommand command;
  command.session = session;
  command.script = "check\n";
  auto reply = healthy.sessionCommand(command);
  ASSERT_TRUE(reply.isOk()) << reply.message();
  EXPECT_EQ(reply.value().stats.session, session);
  auto closed = healthy.closeSession(session);
  ASSERT_TRUE(closed.isOk()) << closed.message();
}

TEST(ServerOrphanTest, TornConnectionMidRequestStillSettlesTheFuture) {
  // A service that admits but does not serve until start(): the request is
  // *guaranteed* still in flight when the connection tears, so the server
  // must adopt its future (no timing luck involved).
  svc::ServiceOptions options;
  options.shards = 1;
  options.start = false;
  svc::WorkbenchService service(options);
  net::Server server(service);
  ASSERT_TRUE(server.start().isOk());

  {
    RawClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.sendBytes(submitFrame(31, "pipeline \"torn\"\n")));
    client.close();  // tear it down with the request un-dispatched
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stats().orphans_adopted < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "orphan never adopted";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.stats().orphans_settled, 0u);  // still in flight

  // Let the service run: the adopted future must settle — the admitted
  // job is never abandoned, and the server keeps serving afterwards.
  service.start();
  while (server.stats().orphans_settled < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "orphaned future never settled";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  RawClient probe(server.port());
  ASSERT_TRUE(probe.connected());
  ASSERT_TRUE(probe.sendBytes(submitFrame(32, "pipeline \"after\"\n")));
  net::Frame reply;
  ASSERT_TRUE(probe.readFrame(reply));
  EXPECT_EQ(reply.request_id, 32u);
  server.stop();
}

// ---------------------------------------------------------------------------
// End-to-end golden: a session split across framed requests over a real
// socket is bit-identical to the same session through the in-process
// service (ISSUE acceptance criterion).
// ---------------------------------------------------------------------------

TEST_F(ServerTest, LoopbackSessionIsBitIdenticalToInProcessService) {
  // Split the Figure-11 script at its own step markers into 4 command
  // batches; the last one deposits inputs, runs, and reads back planes.
  const std::string script = figure11SessionScript();
  std::vector<std::string> chunks;
  std::size_t start = 0;
  for (int step = 2; step <= 4; ++step) {
    const std::string marker = "# step " + std::to_string(step);
    const std::size_t cut = script.find(marker);
    ASSERT_NE(cut, std::string::npos) << marker;
    chunks.push_back(script.substr(start, cut - start));
    start = cut;
  }
  chunks.push_back(script.substr(start));

  auto driveSession = [&](auto&& call) -> std::vector<svc::ServiceReply> {
    std::vector<svc::ServiceReply> replies;
    replies.push_back(call(svc::Request{svc::OpenSession{}}));
    const std::uint64_t session = replies.front().stats.session;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      svc::SessionCommand command;
      command.session = session;
      command.script = chunks[c];
      if (c + 1 == chunks.size()) {
        command.run = true;
        command.inputs = figure11Inputs();
        command.outputs = {svc::PlaneRange{4, 161, 366},
                           svc::PlaneRange{9, 0, 1}};
      }
      replies.push_back(call(svc::Request{command}));
    }
    replies.push_back(call(svc::Request{svc::CloseSession{session}}));
    return replies;
  };

  // Reference: in-process service, same shard count as the server's.
  svc::ServiceOptions reference_options;
  reference_options.shards = 2;
  svc::WorkbenchService reference(reference_options);
  const std::vector<svc::ServiceReply> expected =
      driveSession([&](svc::Request request) {
        return reference.submit(std::move(request)).get();
      });

  // Same session over the socket through the blocking client.
  ClientOptions client_options;
  client_options.port = server_->port();
  Client client(client_options);
  const std::vector<svc::ServiceReply> got =
      driveSession([&](svc::Request request) {
        auto reply = client.call(std::move(request));
        EXPECT_TRUE(reply.isOk()) << reply.message();
        return reply.isOk() ? std::move(reply).value() : svc::ServiceReply{};
      });

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(net::deterministicReplyJson(got[i]).dump(),
              net::deterministicReplyJson(expected[i]).dump())
        << "reply " << i;
    EXPECT_EQ(got[i].ok(), expected[i].ok()) << i;
  }
  // The run reply carried real plane data, bit-exactly.
  const svc::ServiceReply& run = got[got.size() - 2];
  ASSERT_EQ(run.outputs.size(), 2u);
  EXPECT_EQ(run.outputs[0].size(), 366u);
  EXPECT_EQ(run.outputs, expected[expected.size() - 2].outputs);
}

TEST_F(ServerTest, PipelinedRequestsComeBackByRequestId) {
  // Two requests pipelined on one raw connection: a slow GenerateAndRun
  // then a trivial SubmitSession.  Replies may settle out of order; the
  // request ids must tie them back regardless of arrival order.
  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());
  net::Frame heavy;
  heavy.type = static_cast<std::uint16_t>(net::FrameType::kGenerateAndRun);
  heavy.request_id = 41;
  heavy.payload = net::requestToJson(figure11Request()).dump();
  std::string bytes = net::encodeFrame(heavy);
  bytes += submitFrame(42, "# nothing\n");
  ASSERT_TRUE(client.sendBytes(bytes));

  bool saw_heavy = false, saw_light = false;
  for (int i = 0; i < 2; ++i) {
    net::Frame reply;
    ASSERT_TRUE(client.readFrame(reply));
    ASSERT_EQ(reply.type,
              static_cast<std::uint16_t>(net::FrameType::kReply));
    if (reply.request_id == 41) saw_heavy = true;
    if (reply.request_id == 42) saw_light = true;
  }
  EXPECT_TRUE(saw_heavy);
  EXPECT_TRUE(saw_light);
}

// ---------------------------------------------------------------------------
// docs/PROTOCOL.md lockstep: the normative doc must name the magic, the
// version, every frame type with its code, every protocol error code, and
// every nondeterministic stats field.  Changing the wire contract without
// updating the doc fails here.
// ---------------------------------------------------------------------------

TEST(ProtocolDocTest, DocumentsTheWireContractInLockstepWithTheCode) {
  const std::string path = std::string(NSC_REPO_DIR) + "/docs/PROTOCOL.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path << " missing";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  EXPECT_NE(doc.find("NSCW"), std::string::npos) << "magic";
  EXPECT_NE(doc.find("version"), std::string::npos);
  for (const auto& [code, name] : net::allFrameTypes()) {
    EXPECT_NE(doc.find("| " + std::to_string(code) + " "), std::string::npos)
        << "frame type code " << code << " undocumented";
    EXPECT_NE(doc.find(name), std::string::npos)
        << "frame type " << name << " undocumented";
  }
  for (const char* code : net::protocolErrorCodes()) {
    EXPECT_NE(doc.find(std::string("`") + code + "`"), std::string::npos)
        << "protocol error code " << code << " undocumented";
  }
  for (const std::string& field : net::nondeterministicStatsFields()) {
    EXPECT_NE(doc.find("`" + field + "`"), std::string::npos)
        << "nondeterministic stats field " << field << " undocumented";
  }
  // Reply schema top-level keys.
  for (const char* key : {"status", "session", "generation", "run",
                          "ensemble", "system", "outputs", "verify", "stats",
                          "complete"}) {
    EXPECT_NE(doc.find(std::string("`") + key + "`"), std::string::npos)
        << "reply field " << key << " undocumented";
  }
}

}  // namespace
}  // namespace nsc
