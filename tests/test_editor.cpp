// Editor tests: placement, wiring, menus, refusal behavior, undo/redo,
// pipeline-list operations, mouse-level interaction, and file round trips.
#include <gtest/gtest.h>

#include "common/strings.h"

#include <algorithm>
#include <cstdio>

#include "editor/editor.h"
#include "editor/session.h"
#include "editor/window_render.h"

namespace nsc::ed {
namespace {

using arch::Endpoint;
using arch::OpCode;

class EditorTest : public ::testing::Test {
 protected:
  EditorTest() : editor_(machine_) {}

  Point inDrawing(int dx, int dy) const {
    const Rect& r = editor_.layout().drawing;
    return {r.x + dx, r.y + dy};
  }
  arch::AlsId doublet() const { return machine_.config().num_singlets; }

  arch::Machine machine_;
  Editor editor_;
};

TEST_F(EditorTest, PlaceIconBindsFreeAls) {
  const auto id = editor_.placeIcon(IconKind::kTriplet, inDrawing(50, 50));
  ASSERT_TRUE(id.has_value());
  const Icon* icon = editor_.doc().scene.findIcon(*id);
  ASSERT_NE(icon, nullptr);
  EXPECT_EQ(machine_.als(icon->als).kind, arch::AlsKind::kTriplet);
  EXPECT_NE(editor_.doc().semantic.findAls(icon->als), nullptr);
}

TEST_F(EditorTest, PlacementExhaustsAlsPool) {
  for (int i = 0; i < machine_.config().num_triplets; ++i) {
    EXPECT_TRUE(
        editor_.placeIcon(IconKind::kTriplet, inDrawing(40 + i * 160, 40))
            .has_value());
  }
  EXPECT_FALSE(
      editor_.placeIcon(IconKind::kTriplet, inDrawing(40, 300)).has_value());
  EXPECT_NE(editor_.message().find("already placed"), std::string::npos);
}

TEST_F(EditorTest, PlacementOutsideDrawingAreaRefused) {
  EXPECT_FALSE(editor_.placeIcon(IconKind::kSinglet, Point{5, 5}).has_value());
  EXPECT_EQ(editor_.stats().actions_refused, 1u);
}

TEST_F(EditorTest, DoubletBypassSetsSemanticFlag) {
  const auto id = editor_.placeIcon(IconKind::kDoubletBypass, inDrawing(60, 60));
  ASSERT_TRUE(id.has_value());
  const Icon* icon = editor_.doc().scene.findIcon(*id);
  const prog::AlsUse* use = editor_.doc().semantic.findAls(icon->als);
  ASSERT_NE(use, nullptr);
  EXPECT_TRUE(use->bypass);
  // Programming the bypassed slot must be refused.
  const arch::FuId bypassed = machine_.als(icon->als).fus[1];
  EXPECT_FALSE(editor_.setFuOp(bypassed, OpCode::kAbs));
}

TEST_F(EditorTest, ConnectValidatesAndDrawsWire) {
  const auto id = editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  ASSERT_TRUE(id.has_value());
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  EXPECT_TRUE(editor_.connect(Endpoint::planeRead(0), Endpoint::fuInput(fu, 0)));
  EXPECT_EQ(editor_.doc().scene.wires().size(), 1u);
  EXPECT_EQ(editor_.doc().semantic.connections.size(), 1u);
  // A second driver on the same pad is refused at edit time and leaves no
  // trace.
  EXPECT_FALSE(editor_.connect(Endpoint::planeRead(1), Endpoint::fuInput(fu, 0)));
  EXPECT_EQ(editor_.doc().scene.wires().size(), 1u);
  EXPECT_EQ(editor_.doc().semantic.connections.size(), 1u);
  EXPECT_GT(editor_.stats().actions_refused, 0u);
}

TEST_F(EditorTest, ConnectRequiresPlacedIcon) {
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  EXPECT_FALSE(editor_.connect(Endpoint::planeRead(0), Endpoint::fuInput(fu, 0)));
  EXPECT_NE(editor_.message().find("not placed"), std::string::npos);
}

TEST_F(EditorTest, ConnectionMenuHidesUnplacedFus) {
  editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  const auto menu = editor_.connectionMenu(Endpoint::planeRead(0));
  for (const Endpoint& e : menu) {
    if (e.kind == arch::EndpointKind::kFuInput) {
      EXPECT_EQ(machine_.fu(e.unit).als, doublet());
    }
  }
  // Plane/cache/sd destinations remain available (they have no icons).
  const bool has_plane_write =
      std::any_of(menu.begin(), menu.end(), [](const Endpoint& e) {
        return e.kind == arch::EndpointKind::kPlaneWrite;
      });
  EXPECT_TRUE(has_plane_write);
}

TEST_F(EditorTest, OpMenuFollowsCapabilities) {
  editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  const arch::FuId slot0 = machine_.als(doublet()).fus[0];
  const arch::FuId slot1 = machine_.als(doublet()).fus[1];
  const auto menu0 = editor_.opMenu(slot0);
  const auto menu1 = editor_.opMenu(slot1);
  EXPECT_NE(std::find(menu0.begin(), menu0.end(), OpCode::kIAdd), menu0.end());
  EXPECT_EQ(std::find(menu0.begin(), menu0.end(), OpCode::kMax), menu0.end());
  EXPECT_NE(std::find(menu1.begin(), menu1.end(), OpCode::kMax), menu1.end());
  // Selecting an illegal op is refused with the capability prose.
  EXPECT_FALSE(editor_.setFuOp(slot0, OpCode::kMax));
  EXPECT_NE(editor_.message().find("circuitry"), std::string::npos);
}

TEST_F(EditorTest, DmaSubwindowValidation) {
  EXPECT_TRUE(editor_.setDma(Endpoint::planeRead(3),
                             {"u", 0, 1, 128, 1, 0, 0, false}));
  // Out-of-range transfer refused (Figure 9 fields validated on commit).
  EXPECT_FALSE(editor_.setDma(
      Endpoint::planeRead(3),
      {"u", machine_.config().planeWords() - 1, 1, 128, 1, 0, 0, false}));
  EXPECT_NE(editor_.message().find("outside"), std::string::npos);
}

TEST_F(EditorTest, DeleteIconRemovesWiresAndSemantics) {
  const auto id = editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  editor_.connect(Endpoint::planeRead(0), Endpoint::fuInput(fu, 0));
  editor_.setFuOp(fu, OpCode::kAbs);
  ASSERT_TRUE(editor_.deleteIcon(*id));
  EXPECT_TRUE(editor_.doc().scene.icons().empty());
  EXPECT_TRUE(editor_.doc().scene.wires().empty());
  EXPECT_TRUE(editor_.doc().semantic.als_uses.empty());
  EXPECT_TRUE(editor_.doc().semantic.connections.empty());
}

TEST_F(EditorTest, DeleteIconUnmarksDownstreamInputs) {
  editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  editor_.placeIcon(IconKind::kDoublet, inDrawing(300, 80));
  const auto& icons = editor_.doc().scene.icons();
  const arch::FuId producer = machine_.als(icons[0].als).fus[0];
  const arch::FuId consumer = machine_.als(icons[1].als).fus[0];
  editor_.setFuOp(producer, OpCode::kAbs);
  editor_.setFuOp(consumer, OpCode::kAbs);
  editor_.connect(Endpoint::planeRead(0), Endpoint::fuInput(producer, 0));
  editor_.connect(Endpoint::fuOutput(producer), Endpoint::fuInput(consumer, 0));
  ASSERT_TRUE(editor_.deleteIcon(icons[0].id));
  const prog::FuUse* use = editor_.doc().semantic.findFu(machine_, consumer);
  ASSERT_NE(use, nullptr);
  EXPECT_EQ(use->in_a, arch::InputSelect::kNone);
}

TEST_F(EditorTest, UndoRedoRestoreExactState) {
  editor_.placeIcon(IconKind::kTriplet, inDrawing(60, 60));
  const prog::PipelineDiagram after_place = editor_.doc().semantic;
  const arch::AlsId als = editor_.doc().scene.icons()[0].als;
  const arch::FuId fu = machine_.als(als).fus[0];
  editor_.setFuOp(fu, OpCode::kAdd);
  EXPECT_TRUE(editor_.undo());
  EXPECT_EQ(editor_.doc().semantic, after_place);
  EXPECT_TRUE(editor_.redo());
  EXPECT_TRUE(editor_.doc().semantic.findFu(machine_, fu)->enabled);
  // Refused actions change nothing, so undo still returns to after_place.
  EXPECT_FALSE(editor_.setFuOp(fu, OpCode::kMax));  // wrong capability? slot0 of triplet has int
  editor_.undo();
  EXPECT_EQ(editor_.doc().semantic, after_place);
}

TEST_F(EditorTest, UndoAllReturnsToEmptyDocument) {
  const prog::PipelineDiagram initial = editor_.doc().semantic;
  editor_.placeIcon(IconKind::kSinglet, inDrawing(40, 40));
  editor_.placeIcon(IconKind::kDoublet, inDrawing(200, 40));
  editor_.insertPipeline("two");
  editor_.placeIcon(IconKind::kTriplet, inDrawing(40, 40));
  while (editor_.undo()) {
  }
  EXPECT_EQ(editor_.pipelineCount(), 1);
  EXPECT_EQ(editor_.doc().semantic, initial);
  EXPECT_TRUE(editor_.doc().scene.icons().empty());
}

TEST_F(EditorTest, PipelineListOperations) {
  editor_.insertPipeline("second");
  editor_.insertPipeline("third");
  EXPECT_EQ(editor_.pipelineCount(), 3);
  EXPECT_EQ(editor_.currentIndex(), 2);
  EXPECT_TRUE(editor_.scrollBackward());
  EXPECT_EQ(editor_.doc().semantic.name, "second");
  editor_.copyPipeline();
  EXPECT_EQ(editor_.pipelineCount(), 4);
  EXPECT_EQ(editor_.doc().semantic.name, "second (copy)");
  EXPECT_TRUE(editor_.deletePipeline());
  EXPECT_EQ(editor_.pipelineCount(), 3);
  EXPECT_TRUE(editor_.jumpTo(0));
  EXPECT_FALSE(editor_.scrollBackward());
  EXPECT_FALSE(editor_.jumpTo(99));
}

TEST_F(EditorTest, CannotDeleteLastPipeline) {
  EXPECT_FALSE(editor_.deletePipeline());
}

TEST_F(EditorTest, MouseDragFromPalettePlacesIcon) {
  editor_.beginPaletteDrag(IconKind::kDoublet);
  EXPECT_EQ(editor_.mode(), Mode::kDraggingNew);
  editor_.mouseMove(inDrawing(100, 100));
  editor_.mouseUp(inDrawing(120, 140));
  EXPECT_EQ(editor_.mode(), Mode::kIdle);
  ASSERT_EQ(editor_.doc().scene.icons().size(), 1u);
  EXPECT_EQ(editor_.doc().scene.icons()[0].pos, (Point{inDrawing(120, 140)}));
}

TEST_F(EditorTest, RubberBandConnectBetweenPads) {
  editor_.placeIcon(IconKind::kDoublet, inDrawing(60, 60));
  editor_.placeIcon(IconKind::kDoublet, inDrawing(400, 60));
  const auto& icons = editor_.doc().scene.icons();
  const Icon a = icons[0];
  const Icon b = icons[1];
  const Point from = a.outputPad(0);
  const Point to = b.inputPad(0, 0);
  editor_.mouseDown(from);
  EXPECT_EQ(editor_.mode(), Mode::kRubberBand);
  editor_.mouseMove(Point{(from.x + to.x) / 2, from.y});
  EXPECT_FALSE(editor_.hoverLegal().has_value());  // over empty space
  editor_.mouseMove(to);
  ASSERT_TRUE(editor_.hoverLegal().has_value());
  EXPECT_TRUE(*editor_.hoverLegal());
  editor_.mouseUp(to);
  EXPECT_EQ(editor_.doc().scene.wires().size(), 1u);
}

TEST_F(EditorTest, RubberBandToIllegalPadShowsRefusal) {
  editor_.placeIcon(IconKind::kDoublet, inDrawing(60, 60));
  const Icon icon = editor_.doc().scene.icons()[0];
  // Output to its own input: self-loop, must be flagged during hover and
  // refused at release.
  const Point from = icon.outputPad(0);
  const Point to = icon.inputPad(0, 1);
  editor_.mouseDown(from);
  editor_.mouseMove(to);
  ASSERT_TRUE(editor_.hoverLegal().has_value());
  EXPECT_FALSE(*editor_.hoverLegal());
  editor_.mouseUp(to);
  EXPECT_TRUE(editor_.doc().scene.wires().empty());
  EXPECT_GT(editor_.stats().actions_refused, 0u);
}

TEST_F(EditorTest, MouseMoveDragsExistingIcon) {
  editor_.placeIcon(IconKind::kSinglet, inDrawing(60, 60));
  const Icon icon = editor_.doc().scene.icons()[0];
  const Point grab{icon.pos.x + 20, icon.pos.y + 30};
  editor_.mouseDown(grab);
  EXPECT_EQ(editor_.mode(), Mode::kDraggingIcon);
  editor_.mouseMove(Point{grab.x + 100, grab.y + 50});
  editor_.mouseUp(Point{grab.x + 100, grab.y + 50});
  EXPECT_EQ(editor_.doc().scene.icons()[0].pos.x, icon.pos.x + 100);
  EXPECT_EQ(editor_.doc().scene.icons()[0].pos.y, icon.pos.y + 50);
}

TEST_F(EditorTest, FileRoundTripPreservesEverything) {
  editor_.renamePipeline("first");
  editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  editor_.setFuOp(fu, OpCode::kMul);
  editor_.connect(Endpoint::planeRead(0), Endpoint::fuInput(fu, 0));
  editor_.setConstInput(fu, 1, 4.5);
  editor_.connect(Endpoint::fuOutput(fu), Endpoint::planeWrite(1));
  editor_.setDma(Endpoint::planeRead(0), {"x", 0, 1, 32, 1, 0, 0, false});
  editor_.setDma(Endpoint::planeWrite(1), {"y", 0, 1, 32, 1, 0, 0, false});
  editor_.insertPipeline("second");
  editor_.setSeq({arch::SeqOp::kHalt, 0, 0, 0});

  const std::string path = ::testing::TempDir() + "/editor_doc.json";
  ASSERT_TRUE(editor_.saveToFile(path).isOk());

  Editor loaded(machine_);
  ASSERT_TRUE(loaded.loadFromFile(path).isOk());
  EXPECT_EQ(loaded.pipelineCount(), 2);
  EXPECT_EQ(loaded.program(), editor_.program());
  EXPECT_EQ(loaded.doc(0).scene.icons().size(), 1u);
  EXPECT_EQ(loaded.doc(0).scene.icons()[0].als, doublet());
  std::remove(path.c_str());
}

TEST_F(EditorTest, GenerateFromEditedDiagram) {
  editor_.placeIcon(IconKind::kDoublet, inDrawing(80, 80));
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  editor_.setFuOp(fu, OpCode::kMul);
  editor_.connect(Endpoint::planeRead(0), Endpoint::fuInput(fu, 0));
  editor_.setConstInput(fu, 1, 2.0);
  editor_.connect(Endpoint::fuOutput(fu), Endpoint::planeWrite(1));
  editor_.setDma(Endpoint::planeRead(0), {"x", 0, 1, 16, 1, 0, 0, false});
  editor_.setDma(Endpoint::planeWrite(1), {"y", 0, 1, 16, 1, 0, 0, false});
  editor_.setSeq({arch::SeqOp::kHalt, 0, 0, 0});
  const auto result = editor_.generate();
  EXPECT_TRUE(result.ok) << result.diagnostics.format();
  EXPECT_EQ(result.exe.words.size(), 1u);
}

TEST(ParseEndpointTest, AllForms) {
  EXPECT_EQ(parseEndpoint("fu7.a").value(), Endpoint::fuInput(7, 0));
  EXPECT_EQ(parseEndpoint("fu7.b").value(), Endpoint::fuInput(7, 1));
  EXPECT_EQ(parseEndpoint("fu31.out").value(), Endpoint::fuOutput(31));
  EXPECT_EQ(parseEndpoint("plane15.write").value(), Endpoint::planeWrite(15));
  EXPECT_EQ(parseEndpoint("cache3.read").value(), Endpoint::cacheRead(3));
  EXPECT_EQ(parseEndpoint("sd1.tap2").value(), Endpoint::sdOutput(1, 2));
  EXPECT_EQ(parseEndpoint("sd0.in").value(), Endpoint::sdInput(0));
  EXPECT_FALSE(parseEndpoint("nonsense").isOk());
  EXPECT_FALSE(parseEndpoint("fu7.c").isOk());
}

TEST(SessionTest, ScriptBuildsARunnableProgram) {
  arch::Machine machine;
  Editor editor(machine);
  const std::string script = R"(
# a tiny scale-by-2 pipeline, then halt
pipeline "scale"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b 2.0
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=16 var=x
dma plane1.write base=0 stride=1 count=16 var=y
seq halt
check
)";
  const SessionResult result = runSession(editor, script);
  EXPECT_TRUE(result.status.isOk()) << result.status.message();
  EXPECT_EQ(result.failures, 0) << common::joinStrings(result.log, "\n");
  EXPECT_TRUE(editor.generate().ok);
}

TEST(SessionTest, RefusalsAreRecordedNotFatal) {
  arch::Machine machine;
  Editor editor(machine);
  const std::string script = R"(
pipeline "bad"
place doublet at 300,200
setop fu4 max          # fu4 lacks min/max circuitry: refused
connect plane0.read fu4.a
connect plane1.read fu4.a   # already driven: refused
)";
  const SessionResult result = runSession(editor, script);
  EXPECT_TRUE(result.status.isOk()) << result.status.message();
  EXPECT_EQ(result.failures, 2);
}

TEST(SessionTest, ParseErrorsStopReplay) {
  arch::Machine machine;
  Editor editor(machine);
  const SessionResult result = runSession(editor, "frobnicate the widget\n");
  EXPECT_FALSE(result.status.isOk());
  EXPECT_NE(result.status.message().find("line 1"), std::string::npos);
}

TEST_F(EditorTest, CheckerQueriesAreMemoizedBetweenMutations) {
  ASSERT_TRUE(
      editor_.placeIcon(IconKind::kDoublet, inDrawing(60, 60)).has_value());
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  const Endpoint from = Endpoint::planeRead(0);

  const auto first = editor_.connectionMenu(from);
  const std::uint64_t after_first = editor_.stats().checker_queries;
  const auto second = editor_.connectionMenu(from);
  EXPECT_EQ(second, first);
  // Repeated menu population between mutations hits the memoized checker
  // session: the query counter must not move.
  EXPECT_EQ(editor_.stats().checker_queries, after_first);

  // legalOps depends only on the machine; cached for the editor's lifetime.
  const auto ops_first = editor_.opMenu(fu);
  const std::uint64_t after_ops = editor_.stats().checker_queries;
  const auto ops_second = editor_.opMenu(fu);
  EXPECT_EQ(ops_second, ops_first);
  EXPECT_EQ(editor_.stats().checker_queries, after_ops);

  // checkCurrent is memoized the same way.
  const auto diags_first = editor_.checkCurrent();
  const std::uint64_t after_check = editor_.stats().checker_queries;
  const auto diags_second = editor_.checkCurrent();
  EXPECT_EQ(diags_second.errorCount(), diags_first.errorCount());
  EXPECT_EQ(editor_.stats().checker_queries, after_check);
}

TEST_F(EditorTest, MemoizedCheckerResultsInvalidateOnMutatingEdit) {
  ASSERT_TRUE(
      editor_.placeIcon(IconKind::kDoublet, inDrawing(60, 60)).has_value());
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  ASSERT_TRUE(editor_.setFuOp(fu, OpCode::kAdd));
  const Endpoint from = Endpoint::planeRead(0);
  const Endpoint to = Endpoint::fuInput(fu, 0);

  const auto before = editor_.connectionMenu(from);
  ASSERT_NE(std::find(before.begin(), before.end(), to), before.end());

  // Mutating edit: drive fu.a from plane 0.  The old menu would be stale —
  // fu.a is no longer a legal target.
  ASSERT_TRUE(editor_.connect(from, to)) << editor_.message();
  const std::uint64_t queries_after_edit = editor_.stats().checker_queries;
  const auto after = editor_.connectionMenu(from);
  // Recomputed (revision moved), not served stale from the session cache.
  EXPECT_GT(editor_.stats().checker_queries, queries_after_edit);
  EXPECT_EQ(std::find(after.begin(), after.end(), to), after.end());

  // The undo restores the diagram to a fresh revision: still no staleness.
  ASSERT_TRUE(editor_.undo());
  const auto undone = editor_.connectionMenu(from);
  EXPECT_NE(std::find(undone.begin(), undone.end(), to), undone.end());
}

TEST_F(EditorTest, DiagramRevisionBumpsOnBuilderMutations) {
  prog::PipelineDiagram d;
  const std::uint64_t r0 = d.revision();
  d.useAls(machine_, doublet());
  EXPECT_GT(d.revision(), r0);
  const std::uint64_t r1 = d.revision();
  const arch::FuId fu = machine_.als(doublet()).fus[0];
  d.setFuOp(machine_, fu, OpCode::kAdd);
  EXPECT_GT(d.revision(), r1);
  const std::uint64_t r2 = d.revision();
  d.dmaAt(Endpoint::planeRead(0)).count = 8;
  EXPECT_GT(d.revision(), r2);
  // Revision is not part of semantic equality.
  prog::PipelineDiagram e;
  e.useAls(machine_, doublet());
  e.setFuOp(machine_, fu, OpCode::kAdd);
  e.dmaAt(Endpoint::planeRead(0)).count = 8;
  EXPECT_EQ(d, e);
}

TEST(SessionTest, ScanBatchesCommandsUpFront) {
  const std::string script = R"(
# comment-only line
pipeline "batch"

place doublet at 400,300   # trailing comment
check
)";
  const auto batch = SessionRunner::scan(script);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].words[0], "pipeline");
  EXPECT_EQ(batch[0].line, 3);
  EXPECT_EQ(batch[1].words[0], "place");
  EXPECT_EQ(batch[1].text, "place doublet at 400,300");
  EXPECT_EQ(batch[2].words[0], "check");

  arch::Machine machine;
  Editor editor(machine);
  SessionRunner runner(editor);
  const SessionResult result = runner.run(batch);
  EXPECT_TRUE(result.status.isOk()) << result.status.message();
  EXPECT_EQ(result.commands, 3);
  EXPECT_EQ(result.failures, 0);
}

TEST(SessionTest, RunnerPersistsAcrossBatches) {
  arch::Machine machine;
  Editor editor(machine);
  SessionRunner runner(editor);
  const SessionResult first = runner.runScript("pipeline \"multi\"\n");
  EXPECT_TRUE(first.clean()) << first.status.message();
  // Second batch continues against the same editor state.
  const SessionResult second = runner.runScript("place doublet at 400,300\n");
  EXPECT_TRUE(second.clean()) << second.status.message();
  EXPECT_EQ(editor.doc().semantic.name, "multi");
  EXPECT_EQ(editor.doc().scene.icons().size(), 1u);
}

TEST(SessionTest, ScanOfBlankAndCommentOnlyScriptsIsEmpty) {
  EXPECT_TRUE(SessionRunner::scan("").empty());
  EXPECT_TRUE(SessionRunner::scan("\n\n\n").empty());
  EXPECT_TRUE(SessionRunner::scan("   \t \n# just a comment\n  # more\n")
                  .empty());
  // Replaying the empty batch is a clean no-op session.
  arch::Machine machine;
  Editor editor(machine);
  const SessionResult result =
      runSession(editor, "# commentary only\n\n   \n");
  EXPECT_TRUE(result.clean()) << result.status.message();
  EXPECT_EQ(result.commands, 0);
  EXPECT_TRUE(result.log.empty());
}

TEST(SessionTest, MalformedCommandsReportOneBasedSourceLines) {
  arch::Machine machine;
  // Line numbers must survive blank and comment lines: the bad command
  // below sits on source line 5 even though it is the 2nd scanned command.
  const std::string script = "\n"                         // line 1
                             "pipeline \"lines\"\n"       // line 2
                             "# commentary\n"             // line 3
                             "\n"                         // line 4
                             "place doublet nowhere\n";   // line 5
  const auto batch = SessionRunner::scan(script);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].line, 5);
  Editor editor(machine);
  const SessionResult result = SessionRunner(editor).run(batch);
  EXPECT_FALSE(result.status.isOk());
  EXPECT_NE(result.status.message().find("line 5:"), std::string::npos)
      << result.status.message();
  // Commands before the malformed one were replayed; the error stopped the
  // batch at the offender.
  EXPECT_EQ(result.commands, 2);

  // A representative sample of malformed spellings: each surfaces as a
  // Status error naming its (1-based) line, never a crash or a refusal.
  const char* malformed[] = {
      "place\n",                        // too few words
      "place gizmo at 10,10\n",         // unknown icon kind
      "connect plane0.read\n",          // missing TO endpoint
      "connect nonsense fu4.a\n",       // unparseable endpoint
      "dma plane0.read base16\n",       // not key=value
      "dma plane0.read vase=16\n",      // unknown key
      "sd 0 delay=1,2\n",               // expected taps=
      "seq warp target=3\n",            // unknown sequencer op
      "select\n",                       // missing index
      "frobnicate the widget\n",        // unknown command
  };
  for (const char* bad : malformed) {
    Editor fresh(machine);
    const SessionResult r = runSession(fresh, bad);
    EXPECT_FALSE(r.status.isOk()) << bad;
    EXPECT_NE(r.status.message().find("line 1:"), std::string::npos)
        << bad << " -> " << r.status.message();
  }
}

TEST(SessionTest, BatchReplayMatchesLineAtATimeReplay) {
  arch::Machine machine;
  const std::string script = R"(
pipeline "parity"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b 2.0
connect fu4.out plane1.write
connect plane1.read fu4.b   # refused: fu4.b already fed by a constant
dma plane0.read base=0 stride=1 count=16 var=x
dma plane1.write base=0 stride=1 count=16 var=y
seq halt
check
)";
  // Whole script as one batch.
  Editor batch_editor(machine);
  const SessionResult batch = runSession(batch_editor, script);

  // Same script, one line per runScript call on a persistent runner.
  Editor line_editor(machine);
  SessionRunner runner(line_editor);
  SessionResult merged;
  for (const std::string& line : common::split(script, '\n')) {
    const SessionResult one = runner.runScript(line);
    merged.commands += one.commands;
    merged.failures += one.failures;
    merged.log.insert(merged.log.end(), one.log.begin(), one.log.end());
    ASSERT_TRUE(one.status.isOk()) << one.status.message();
  }

  EXPECT_EQ(batch.commands, merged.commands);
  EXPECT_EQ(batch.failures, merged.failures);
  EXPECT_EQ(batch.log, merged.log);
  EXPECT_EQ(batch.failures, 1);  // exactly the flagged refusal
  EXPECT_EQ(batch_editor.program(), line_editor.program());
  EXPECT_TRUE(batch_editor.generate().ok);
}

TEST(SessionTest, MouseLevelCommandsWork) {
  arch::Machine machine;
  Editor editor(machine);
  const std::string script = R"(
pipeline "mouse"
drag doublet to 400,300
drag doublet to 700,300
setop fu4 abs
setop fu6 abs
band fu4.out fu6.a
)";
  const SessionResult result = runSession(editor, script);
  EXPECT_TRUE(result.status.isOk()) << result.status.message();
  EXPECT_EQ(result.failures, 0) << common::joinStrings(result.log, "\n");
  EXPECT_EQ(editor.doc().scene.wires().size(), 1u);
}

}  // namespace
}  // namespace nsc::ed
