// Host-side CFD reference tests: Jacobi math, norms, multigrid transfer
// operators, and V-cycle convergence (the workload of paper reference [6]).
#include <gtest/gtest.h>

#include <cmath>

#include "cfd/poisson.h"

namespace nsc::cfd {
namespace {

TEST(Grid3Test, IndexingRoundTrips) {
  const Grid3 g{5, 7, 9};
  for (int k = 0; k < g.nz; ++k) {
    for (int j = 0; j < g.ny; ++j) {
      for (int i = 0; i < g.nx; ++i) {
        const int c = g.idx(i, j, k);
        EXPECT_EQ(g.iOf(c), i);
        EXPECT_EQ(g.jOf(c), j);
        EXPECT_EQ(g.kOf(c), k);
      }
    }
  }
}

TEST(PoissonTest, DegenerateGridsAreSafeNoOps) {
  // One-layer grid: the linear sweep window is empty (linearHi < linearLo)
  // and there are no interior cells — every sweep must be a graceful no-op,
  // not a wrapped-bounds scan.
  PoissonProblem p;
  p.grid = {8, 8, 1};
  p.h = 1.0 / 7.0;
  p.f.assign(64, 0.0);
  p.u0.assign(64, 1.0);
  std::vector<double> next;
  EXPECT_EQ(linearJacobiSweep(p, p.u0, next), 0.0);
  EXPECT_EQ(next, p.u0);
  EXPECT_EQ(jacobiSweep(p, p.u0, next), 0.0);
  EXPECT_EQ(next, p.u0);
  EXPECT_EQ(residualLinf(p, p.u0), 0.0);
}

TEST(Grid3Test, LinearSpanCoversExactlyTheInterknownCells) {
  const Grid3 g{6, 5, 4};
  // Every true interior cell lies inside [linearLo, linearHi].
  for (int c = 0; c < g.N(); ++c) {
    if (g.isInterior(c)) {
      EXPECT_GE(c, g.linearLo());
      EXPECT_LE(c, g.linearHi());
    }
  }
  // Every cell outside the span is a boundary cell (so sweeps never touch
  // live data there).
  for (int c = 0; c < g.linearLo(); ++c) EXPECT_TRUE(g.isBoundary(c));
  for (int c = g.linearHi() + 1; c < g.N(); ++c) EXPECT_TRUE(g.isBoundary(c));
}

TEST(Grid3Test, InteriorMaskMatchesPredicate) {
  const Grid3 g{5, 5, 5};
  const std::vector<double> mask = g.interiorMask();
  for (int c = 0; c < g.N(); ++c) {
    EXPECT_EQ(mask[static_cast<std::size_t>(c)], g.isInterior(c) ? 1.0 : 0.0);
  }
}

TEST(PoissonTest, ManufacturedProblemHasZeroBoundary) {
  const PoissonProblem p = PoissonProblem::manufactured(9, 9, 9);
  for (int c = 0; c < p.grid.N(); ++c) {
    if (p.grid.isBoundary(c)) {
      EXPECT_EQ(p.u0[static_cast<std::size_t>(c)], 0.0);
    }
  }
}

TEST(PoissonTest, ExactSolutionHasSmallDiscreteResidual) {
  const PoissonProblem p = PoissonProblem::manufactured(17, 17, 17);
  const std::vector<double> exact = p.exactSolution();
  // Discrete Laplacian of the smooth exact solution differs from f by the
  // O(h^2) truncation error.
  EXPECT_LT(residualLinf(p, exact), 1.5);
  EXPECT_GT(residualLinf(p, exact), 1e-4);
}

TEST(PoissonTest, JacobiResidualDecreasesMonotonically) {
  const PoissonProblem p = PoissonProblem::manufactured(9, 9, 9);
  std::vector<double> u = p.u0, next;
  double prev = 1e300;
  for (int s = 0; s < 50; ++s) {
    const double res = jacobiSweep(p, u, next, 1.0);
    u.swap(next);
    EXPECT_LE(res, prev * 1.0001) << "sweep " << s;
    prev = res;
  }
}

TEST(PoissonTest, LinearSweepAgreesWithTextbookOnInterior) {
  const PoissonProblem p = PoissonProblem::manufactured(8, 8, 8);
  std::vector<double> u = p.u0;
  // Seed with a few textbook sweeps so the field is non-trivial.
  std::vector<double> next;
  for (int s = 0; s < 3; ++s) {
    jacobiSweep(p, u, next, 1.0);
    u.swap(next);
  }
  std::vector<double> linear_next, textbook_next;
  linearJacobiSweep(p, u, linear_next, 1.0);
  jacobiSweep(p, u, textbook_next, 1.0);
  for (int c = 0; c < p.grid.N(); ++c) {
    if (p.grid.isInterior(c)) {
      EXPECT_NEAR(linear_next[static_cast<std::size_t>(c)],
                  textbook_next[static_cast<std::size_t>(c)], 1e-13);
    } else {
      // Boundary cells are restored to the previous iterate's values.
      EXPECT_EQ(linear_next[static_cast<std::size_t>(c)],
                u[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(PoissonTest, DampedSweepInterpolatesTowardJacobi) {
  const PoissonProblem p = PoissonProblem::manufactured(8, 8, 8);
  std::vector<double> full, damped;
  linearJacobiSweep(p, p.u0, full, 1.0);
  linearJacobiSweep(p, p.u0, damped, 0.5);
  for (int c = p.grid.linearLo(); c <= p.grid.linearHi(); ++c) {
    const auto uc = static_cast<std::size_t>(c);
    if (!p.grid.isInterior(c)) continue;
    const double expected = p.u0[uc] + 0.5 * (full[uc] - p.u0[uc]);
    EXPECT_NEAR(damped[uc], expected, 1e-13);
  }
}

TEST(MultigridTest, RestrictionPreservesConstants) {
  const Grid3 fine{9, 9, 9};
  const std::vector<double> ones(static_cast<std::size_t>(fine.N()), 3.5);
  const std::vector<double> coarse = restrictFullWeighting(fine, ones);
  for (double v : coarse) EXPECT_NEAR(v, 3.5, 1e-14);
}

TEST(MultigridTest, ProlongationPreservesConstants) {
  const Grid3 coarse{5, 5, 5};
  const std::vector<double> ones(static_cast<std::size_t>(coarse.N()), -2.0);
  const std::vector<double> fine = prolongTrilinear(coarse, ones);
  EXPECT_EQ(fine.size(), static_cast<std::size_t>(9 * 9 * 9));
  for (double v : fine) EXPECT_NEAR(v, -2.0, 1e-14);
}

TEST(MultigridTest, ProlongationIsExactOnCoincidentPoints) {
  const Grid3 coarse{5, 5, 5};
  std::vector<double> values(static_cast<std::size_t>(coarse.N()));
  for (int c = 0; c < coarse.N(); ++c) {
    values[static_cast<std::size_t>(c)] = static_cast<double>(c) * 0.1;
  }
  const std::vector<double> fine_vals = prolongTrilinear(coarse, values);
  const Grid3 fine{9, 9, 9};
  for (int k = 0; k < coarse.nz; ++k) {
    for (int j = 0; j < coarse.ny; ++j) {
      for (int i = 0; i < coarse.nx; ++i) {
        EXPECT_EQ(fine_vals[static_cast<std::size_t>(fine.idx(2 * i, 2 * j, 2 * k))],
                  values[static_cast<std::size_t>(coarse.idx(i, j, k))]);
      }
    }
  }
}

TEST(MultigridTest, VCycleBeatsJacobiPerSweepBudget) {
  const PoissonProblem p = PoissonProblem::manufactured(17, 17, 17);

  std::vector<double> u_mg = p.u0;
  double res_mg = 0.0;
  for (int cycle = 0; cycle < 5; ++cycle) res_mg = vcycle(p, u_mg);

  // 5 V-cycles cost roughly 5 * (4 fine sweeps + coarse work) — give plain
  // Jacobi a generous 60 fine sweeps and it still loses badly.
  std::vector<double> u_j = p.u0, next;
  for (int s = 0; s < 60; ++s) {
    jacobiSweep(p, u_j, next, 1.0);
    u_j.swap(next);
  }
  const double res_j = residualLinf(p, u_j);
  EXPECT_LT(res_mg, res_j * 0.1)
      << "multigrid should outconverge Jacobi by far";
}

TEST(MultigridTest, VCycleConvergenceFactorIsHealthy) {
  const PoissonProblem p = PoissonProblem::manufactured(17, 17, 17);
  std::vector<double> u = p.u0;
  const double r0 = residualLinf(p, u);
  double r_prev = r0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    const double r = vcycle(p, u);
    EXPECT_LT(r, r_prev * 0.4) << "cycle " << cycle;
    r_prev = r;
  }
}

}  // namespace
}  // namespace nsc::cfd
