// Workbench + visual debugger tests: the assembled Figure-3 system.
#include <gtest/gtest.h>

#include "nsc/nsc.h"

namespace nsc {
namespace {

TEST(WorkbenchTest, SessionToExecutionEndToEnd) {
  Workbench bench;
  const std::string script = R"(
pipeline "triple"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b 3.0
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=8 var=x
dma plane1.write base=0 stride=1 count=8 var=y
seq halt
)";
  const ed::SessionResult session = bench.runSession(script);
  ASSERT_TRUE(session.clean()) << session.status.message();

  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  bench.node().writePlane(0, 0, x);
  const RunOutcome outcome = bench.generateAndRun();
  ASSERT_TRUE(outcome.ok()) << outcome.generation.diagnostics.format()
                            << outcome.run.error_message;
  const auto y = bench.node().readPlane(1, 0, 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(y[static_cast<std::size_t>(i)], 3.0 * (i + 1));
  }
}

TEST(WorkbenchTest, GenerationFailureSurfacesDiagnostics) {
  Workbench bench;
  bench.runSession(R"(
pipeline "broken"
place doublet at 300,200
setop fu4 add
connect plane0.read fu4.a
)");
  const RunOutcome outcome = bench.generateAndRun();
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.generation.diagnostics.hasErrors());
}

TEST(WorkbenchTest, EnsembleRunsAreDeterministicPerReplica) {
  Workbench bench;
  const ed::SessionResult session = bench.runSession(R"(
pipeline "triple"
place doublet at 300,200
setop fu4 mul
connect plane0.read fu4.a
const fu4 b 3.0
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=8 var=x
dma plane1.write base=0 stride=1 count=8 var=y
seq halt
)");
  ASSERT_TRUE(session.clean()) << session.status.message();

  const prog::Program program = bench.editor().program();
  const RunOutcome reference = bench.runProgram(program);
  ASSERT_TRUE(reference.ok());

  const EnsembleOutcome ensemble = bench.runEnsemble(program, 8);
  ASSERT_TRUE(ensemble.ok()) << ensemble.generation.diagnostics.format();
  ASSERT_EQ(ensemble.runs.size(), 8u);
  for (const sim::RunStats& run : ensemble.runs) {
    // Same program, fresh memory per replica: every replica's stats match
    // the single-node reference run bit for bit.
    EXPECT_EQ(run.total_cycles, reference.run.total_cycles);
    EXPECT_EQ(run.total_flops, reference.run.total_flops);
    EXPECT_EQ(run.instructions_executed, reference.run.instructions_executed);
    EXPECT_FALSE(run.error);
  }
  // Zero replicas and generation failures degrade gracefully.
  EXPECT_TRUE(bench.runEnsemble(program, 0).runs.empty());
}

// Batched SoA ensembles through the workbench: every replica's stats are
// bit-identical to the scalar per-replica path at every lane width,
// including an odd replica count (13) that leaves a width-1 remainder and
// per-replica seeds that force some replicas down a divergent branch.
TEST(WorkbenchTest, EnsembleBatchedMatchesScalarAcrossLaneWidths) {
  Workbench bench;
  const arch::Machine& machine = bench.machine();
  const int n = 32;
  // gate: kMax-reduce plane0, latch the max into cond reg 1, branch to
  // "alt" when it exceeds 0.5; "clean" copies plane0 -> plane1; "alt"
  // doubles plane0 into plane2.  Replica seeds pick the path.
  prog::Program program;
  prog::PipelineDiagram& gate = program.append("gate");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId acc = machine.als(als).fus[1];
  gate.setFuOp(machine, acc, arch::OpCode::kMax);
  gate.connect(machine, arch::Endpoint::planeRead(0),
               arch::Endpoint::fuInput(acc, 0));
  gate.setAccumInput(machine, acc, 1, 0.0);
  gate.cond = prog::CondLatch{acc, 1};
  gate.dmaAt(arch::Endpoint::planeRead(0)) = {
      "", 0, 1, static_cast<std::uint64_t>(n), 1, 0, 0, false};
  gate.seq.op = arch::SeqOp::kBranchIf;
  gate.seq.cond_reg = 1;
  gate.seq.target = 2;
  prog::PipelineDiagram& clean = program.append("clean");
  clean.connect(machine, arch::Endpoint::planeRead(0),
                arch::Endpoint::planeWrite(1));
  for (const arch::Endpoint e :
       {arch::Endpoint::planeRead(0), arch::Endpoint::planeWrite(1)}) {
    prog::DmaSpec& dma = clean.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = static_cast<std::uint64_t>(n);
  }
  clean.seq.op = arch::SeqOp::kHalt;
  prog::PipelineDiagram& alt = program.append("alt");
  const arch::FuId mul = machine.als(als).fus[0];
  alt.setFuOp(machine, mul, arch::OpCode::kMul);
  alt.connect(machine, arch::Endpoint::planeRead(0),
              arch::Endpoint::fuInput(mul, 0));
  alt.setConstInput(machine, mul, 1, 2.0);
  alt.connect(machine, arch::Endpoint::fuOutput(mul),
              arch::Endpoint::planeWrite(2));
  for (const arch::Endpoint e :
       {arch::Endpoint::planeRead(0), arch::Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = alt.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = static_cast<std::uint64_t>(n);
  }
  alt.seq.op = arch::SeqOp::kHalt;

  const int replicas = 13;
  const auto seed = [n](int replica, sim::ReplicaStore& store) {
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = 0.001 * (replica + 1) + 0.0001 * i;
    }
    if (replica % 4 == 1) x[0] = 0.75;  // over the latch threshold
    store.writePlane(0, 0, x);
  };

  EnsembleOptions scalar_options;
  scalar_options.lanes = 1;
  scalar_options.init = seed;
  const EnsembleOutcome want =
      bench.runEnsemble(program, replicas, scalar_options);
  ASSERT_TRUE(want.ok()) << want.generation.diagnostics.format();
  EXPECT_EQ(want.lanes_used, 1);
  EXPECT_EQ(want.replicas_scalar, replicas);
  EXPECT_EQ(want.replicas_batched, 0);

  for (const int lanes : {4, 8, 16}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    EnsembleOptions options;
    options.lanes = lanes;
    options.init = seed;
    const EnsembleOutcome got = bench.runEnsemble(program, replicas, options);
    ASSERT_TRUE(got.ok()) << got.generation.diagnostics.format();
    EXPECT_EQ(got.lanes_used, lanes);
    EXPECT_EQ(got.replicas_batched + got.replicas_scalar, replicas);
    EXPECT_GT(got.replicas_batched, 0);
    ASSERT_EQ(got.runs.size(), want.runs.size());
    for (std::size_t i = 0; i < want.runs.size(); ++i) {
      const sim::RunStats& a = want.runs[i];
      const sim::RunStats& b = got.runs[i];
      EXPECT_EQ(a.total_cycles, b.total_cycles) << "replica " << i;
      EXPECT_EQ(a.total_flops, b.total_flops) << "replica " << i;
      EXPECT_EQ(a.total_hazards, b.total_hazards) << "replica " << i;
      EXPECT_EQ(a.instructions_executed, b.instructions_executed)
          << "replica " << i;
      EXPECT_EQ(a.fu_launches, b.fu_launches) << "replica " << i;
      EXPECT_EQ(a.halted, b.halted) << "replica " << i;
      ASSERT_EQ(a.trace.size(), b.trace.size()) << "replica " << i;
      for (std::size_t t = 0; t < a.trace.size(); ++t) {
        EXPECT_EQ(a.trace[t].name, b.trace[t].name)
            << "replica " << i << " trace " << t;
        EXPECT_EQ(a.trace[t].cycles, b.trace[t].cycles)
            << "replica " << i << " trace " << t;
      }
      // The divergent replicas really took the other path.
      EXPECT_EQ(b.trace.back().name, i % 4 == 1 ? "alt" : "clean")
          << "replica " << i;
    }
  }

  // Lane-width resolution: explicit widths win and clamp to the SoA cap.
  EXPECT_EQ(sim::resolveEnsembleLanes(5), 5);
  EXPECT_EQ(sim::resolveEnsembleLanes(1), 1);
  EXPECT_EQ(sim::resolveEnsembleLanes(1000), sim::ReplicaBatch::kMaxLanes);
}

TEST(WorkbenchTest, MakeSystemSharesTheWorkbenchPool) {
  exec::ThreadPool pool(exec::ExecOptions{2});
  Workbench bench({}, &pool);
  EXPECT_EQ(&bench.pool(), &pool);
  sim::HypercubeSystem system = bench.makeSystem(2);
  EXPECT_EQ(system.numNodes(), 4);
  EXPECT_EQ(&system.pool(), &pool);
  // Phases on the workbench-built system reuse the injected pool's workers.
  ASSERT_TRUE(bench.runSession("pipeline \"noop\"\nseq halt\n").clean());
  mc::Generator generator(bench.machine());
  const mc::GenerateResult gen = generator.generate(bench.editor().program());
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  system.loadAll(gen.exe);
  const std::uint64_t created = pool.threadsCreated();
  sim::SystemStats stats;
  system.runPhase(stats);
  EXPECT_FALSE(stats.error) << stats.error_message;
  EXPECT_EQ(pool.threadsCreated(), created);
}

TEST(EditorForProgramTest, ImportsHandBuiltProgram) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  ed::Editor editor = editorForProgram(machine, jacobi.program());
  EXPECT_EQ(editor.pipelineCount(),
            static_cast<int>(jacobi.program().size()));
  EXPECT_EQ(editor.program().pipelines, jacobi.program().pipelines);
  // The sweep diagram renders with its operations visible (Figure 11).
  editor.jumpTo(0);
  const std::string fig11 = renderDiagramAscii(editor);
  EXPECT_NE(fig11.find("add"), std::string::npos);
  EXPECT_NE(fig11.find("max"), std::string::npos);
  EXPECT_NE(fig11.find("cmplt"), std::string::npos);
}

TEST(DebuggerTest, CapturesAndDescribesFrames) {
  Workbench bench;
  bench.runSession(R"(
pipeline "inc"
place doublet at 300,200
setop fu4 add
connect plane0.read fu4.a
const fu4 b 1.0
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=4 var=x
dma plane1.write base=0 stride=1 count=4 var=y
seq halt
)");
  const std::vector<double> x{10, 20, 30, 40};
  bench.node().writePlane(0, 0, x);

  VisualDebugger debugger(bench.machine(), bench.editor().program());
  debugger.attach(bench.node());
  const RunOutcome outcome = bench.generateAndRun();
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(debugger.frames().empty());

  // Frame 0: the plane read emits element 0 (value 10).
  const std::string desc = debugger.describeFrame(debugger.frames()[0]);
  EXPECT_NE(desc.find("plane0.read"), std::string::npos);
  EXPECT_NE(desc.find("10"), std::string::npos);
  EXPECT_NE(desc.find("[el 0]"), std::string::npos);

  // Annotated diagram shows the pipeline plus values.
  const std::string annotated =
      debugger.annotatedDiagram(debugger.frames()[2]);
  EXPECT_NE(annotated.find("add"), std::string::npos);
  EXPECT_NE(annotated.find("cycle 2 values"), std::string::npos);

  // Endpoint history shows the add unit's output going valid after its
  // pipeline latency, with incremented values.
  const arch::FuId fu = bench.machine().als(bench.machine().config().num_singlets).fus[0];
  const std::string history =
      debugger.endpointHistory(arch::Endpoint::fuOutput(fu));
  EXPECT_NE(history.find("11"), std::string::npos);
  EXPECT_NE(history.find("41"), std::string::npos);
}

TEST(DebuggerTest, DescribeAllFramesMatchesFrameOrder) {
  exec::ThreadPool pool(exec::ExecOptions{3});
  Workbench bench({}, &pool);
  bench.runSession(R"(
pipeline "inc"
place doublet at 300,200
setop fu4 add
connect plane0.read fu4.a
const fu4 b 1.0
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=4 var=x
dma plane1.write base=0 stride=1 count=4 var=y
seq halt
)");
  bench.node().writePlane(0, 0, std::vector<double>{10, 20, 30, 40});
  VisualDebugger debugger(bench.machine(), bench.editor().program());
  debugger.attach(bench.node());
  ASSERT_TRUE(bench.generateAndRun().ok());
  ASSERT_FALSE(debugger.frames().empty());

  const std::vector<std::string> all = debugger.describeAllFrames(&pool);
  ASSERT_EQ(all.size(), debugger.frames().size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], debugger.describeFrame(debugger.frames()[i]))
        << "frame " << i;
  }
}

TEST(DebuggerTest, SamplingAndBoundsRespected) {
  Workbench bench;
  bench.runSession(R"(
pipeline "copy"
connect plane0.read plane1.write
dma plane0.read base=0 stride=1 count=64 var=x
dma plane1.write base=0 stride=1 count=64 var=y
seq halt
)");
  bench.node().writePlane(0, 0, std::vector<double>(64, 1.0));
  DebuggerOptions options;
  options.sample_every = 4;
  options.max_frames = 8;
  VisualDebugger debugger(bench.machine(), bench.editor().program(), options);
  debugger.attach(bench.node());
  const RunOutcome outcome = bench.generateAndRun();
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(debugger.frames().size(), 8u);
  for (const sim::TraceFrame& f : debugger.frames()) {
    EXPECT_EQ(f.cycle % 4, 0u);
  }
}

TEST(DebuggerTest, PinpointsStreamGaps) {
  // The Section-6 promise: timing bugs visible as invalid stretches in an
  // endpoint history.  Use a shift/delay stream whose deep tap starts two
  // cycles late.
  Workbench bench;
  bench.runSession(R"(
pipeline "gap"
place doublet at 300,200
connect plane0.read sd0.in
sd 0 taps=0,2
setop fu4 sub
connect sd0.tap0 fu4.a
connect sd0.tap1 fu4.b
connect fu4.out plane1.write
dma plane0.read base=0 stride=1 count=8 var=x
dma plane1.write base=0 stride=1 count=6 var=d
seq halt
)");
  bench.node().writePlane(0, 0, std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8});
  VisualDebugger debugger(bench.machine(), bench.editor().program());
  debugger.attach(bench.node());
  const RunOutcome outcome = bench.generateAndRun();
  ASSERT_TRUE(outcome.ok()) << outcome.generation.diagnostics.format();
  const std::string history =
      debugger.endpointHistory(arch::Endpoint::sdOutput(0, 1));
  // The deep tap shows '-' (invalid) in its first cycles.
  EXPECT_NE(history.find(" -"), std::string::npos);
}

}  // namespace
}  // namespace nsc
