// Property-based tests (seeded sweeps via parameterized suites):
//   1. random stencil programs: compiled pipeline == host evaluation;
//   2. random editor sessions: undoing everything restores the start;
//   3. microword fields: encode/decode identity for random values;
//   4. incremental/thorough checker consistency: whatever the editor
//      accepts connection-by-connection, the global pass accepts too;
//   5. verifier soundness: randomly mutated microcode either verifies clean
//      and executes fault-free on both engines, or the verifier's fault
//      prediction matches the runtime fault — no false-clean verdicts.
#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"

#include "arch/microword_spec.h"
#include "common/rng.h"
#include "compiler/stencil_lang.h"
#include "editor/editor.h"
#include "microcode/generator.h"
#include "sim/batch.h"
#include "sim/compiled.h"
#include "sim/hypercube.h"
#include "sim/node.h"
#include "sim/verify.h"
#include "test_helpers.h"

namespace nsc {
namespace {

using arch::Endpoint;
using arch::Machine;

// ---------------------------------------------------------------------------
// 1. Random stencil programs
// ---------------------------------------------------------------------------

class RandomStencilTest : public ::testing::TestWithParam<int> {};

std::string randomExpr(common::Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.3)) {
    switch (rng.below(3)) {
      case 0: return common::strFormat("%.3f", rng.uniform(0.5, 2.0));
      case 1: {
        static const char* arrays[] = {"u", "v", "w"};
        const char* name = arrays[rng.below(3)];
        const int offset = static_cast<int>(rng.range(-3, 3));
        return common::strFormat("%s[%d]", name, offset);
      }
      default: return "u[0]";
    }
  }
  const std::string a = randomExpr(rng, depth - 1);
  const std::string b = randomExpr(rng, depth - 1);
  switch (rng.below(6)) {
    case 0: return "(" + a + " + " + b + ")";
    case 1: return "(" + a + " - " + b + ")";
    case 2: return "(" + a + " * " + b + ")";
    case 3: return "abs(" + a + ")";
    case 4: return "min(" + a + ", " + b + ")";
    default: return "max(" + a + ", " + b + ")";
  }
}

TEST_P(RandomStencilTest, CompiledPipelineMatchesHostExactly) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const std::string source =
      "out = " + randomExpr(rng, 3) + ";\nreduce m = max(abs(out));\n";
  const auto parsed = xc::StencilProgram::parse(source);
  ASSERT_TRUE(parsed.isOk()) << source << "\n" << parsed.message();

  Machine machine;
  xc::CompileOptions options;
  options.vector_length = 24;
  options.center_base = 16;
  const auto compiled = parsed.value().compile(machine, options);
  if (!compiled.isOk()) {
    // Resource exhaustion and constant-stream reductions are legitimate
    // rejections; the property applies only to mappable programs.
    const bool expected =
        compiled.message().find("out of") != std::string::npos ||
        compiled.message().find("constant stream") != std::string::npos;
    EXPECT_TRUE(expected) << compiled.message();
    return;
  }

  std::map<std::string, std::vector<double>> inputs;
  for (const std::string& name : parsed.value().inputArrays()) {
    std::vector<double> data(options.center_base + options.vector_length + 8);
    for (auto& v : data) v = rng.uniform(-3.0, 3.0);
    inputs[name] = std::move(data);
  }
  const auto host = parsed.value().evaluate(inputs, options);
  ASSERT_TRUE(host.isOk()) << host.message();

  prog::Program program;
  program.pipelines.push_back(compiled.value().diagram);
  mc::Generator generator(machine);
  const auto gen = generator.generate(program);
  ASSERT_TRUE(gen.ok) << source << "\n" << gen.diagnostics.format();
  sim::NodeSim node(machine);
  node.load(gen.exe);
  for (const xc::StreamPlacement& s : compiled.value().streams) {
    if (!s.is_output) node.writePlane(s.plane, 0, inputs.at(s.array));
  }
  const sim::RunStats stats = node.run();
  ASSERT_FALSE(stats.error) << stats.error_message;

  for (const auto& [name, plane] : compiled.value().output_planes) {
    const auto got =
        node.readPlane(plane, options.center_base, options.vector_length);
    const auto& want = host.value().outputs.at(name);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << source << "\nelement " << i;
    }
  }
  for (const auto& [name, where] : compiled.value().reductions) {
    ASSERT_EQ(node.readPlaneWord(where.first, where.second),
              host.value().reductions.at(name))
        << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStencilTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// 2. Random editor sessions undo to the start
// ---------------------------------------------------------------------------

class RandomEditorTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomEditorTest, UndoEverythingRestoresInitialState) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  Machine machine;
  ed::Editor editor(machine);
  const prog::Program initial = editor.program();

  const ed::Rect draw = editor.layout().drawing;
  for (int step = 0; step < 40; ++step) {
    const ed::Point pos{draw.x + 10 + static_cast<int>(rng.below(static_cast<std::uint64_t>(draw.w - 120))),
                        draw.y + 10 + static_cast<int>(rng.below(static_cast<std::uint64_t>(draw.h - 200)))};
    switch (rng.below(7)) {
      case 0: {
        static const ed::IconKind kinds[] = {
            ed::IconKind::kSinglet, ed::IconKind::kDoublet,
            ed::IconKind::kDoubletBypass, ed::IconKind::kTriplet};
        editor.placeIcon(kinds[rng.below(4)], pos);
        break;
      }
      case 1: {
        const arch::FuId fu = static_cast<arch::FuId>(
            rng.below(static_cast<std::uint64_t>(machine.config().numFus())));
        const auto menu = editor.opMenu(fu);
        editor.setFuOp(fu, menu[rng.below(menu.size())]);
        break;
      }
      case 2: {
        const Endpoint from = Endpoint::planeRead(
            static_cast<int>(rng.below(16)));
        const auto targets = editor.connectionMenu(from);
        if (!targets.empty()) {
          editor.connect(from, targets[rng.below(targets.size())]);
        }
        break;
      }
      case 3: {
        prog::DmaSpec spec;
        spec.base = rng.below(1024);
        spec.stride = 1;
        spec.count = 1 + rng.below(128);
        editor.setDma(Endpoint::planeRead(static_cast<int>(rng.below(16))),
                      spec);
        break;
      }
      case 4:
        if (!editor.doc().scene.icons().empty()) {
          const auto& icons = editor.doc().scene.icons();
          editor.deleteIcon(icons[rng.below(icons.size())].id);
        }
        break;
      case 5:
        editor.insertPipeline(common::strFormat("p%d", step));
        break;
      default:
        if (!editor.doc().scene.icons().empty()) {
          const auto& icons = editor.doc().scene.icons();
          editor.moveIcon(icons[rng.below(icons.size())].id, pos);
        }
        break;
    }
  }

  while (editor.undo()) {
  }
  EXPECT_EQ(editor.program(), initial);
  EXPECT_TRUE(editor.doc().scene.icons().empty());
  EXPECT_TRUE(editor.doc().scene.wires().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEditorTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// 3. Microword field round trips
// ---------------------------------------------------------------------------

class MicrowordFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MicrowordFuzzTest, EncodeDecodeIdentityOnRandomFields) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  Machine machine;
  arch::MicrowordSpec spec(machine);
  common::BitVector word = spec.makeWord();
  // Write random values to a random subset, remember expectations, check
  // all fields afterwards (untouched fields must stay zero).
  std::map<std::string, std::uint64_t> expect;
  const auto& fields = spec.fields();
  for (int i = 0; i < 200; ++i) {
    const arch::MicroField& f = fields[rng.below(fields.size())];
    const std::uint64_t mask =
        f.width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << f.width) - 1);
    const std::uint64_t value = rng.next() & mask;
    spec.set(word, f.name, value);
    expect[f.name] = value;
  }
  for (const arch::MicroField& f : fields) {
    const auto it = expect.find(f.name);
    EXPECT_EQ(spec.get(word, f.name), it == expect.end() ? 0u : it->second)
        << f.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MicrowordFuzzTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// 4. Incremental acceptance implies no edit-time errors in the global pass
// ---------------------------------------------------------------------------

class CheckerConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(CheckerConsistencyTest, EditorAcceptedDiagramHasNoWiringErrors) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 3);
  Machine machine;
  check::Checker checker(machine);
  prog::PipelineDiagram d;
  // Place a handful of ALSs.
  for (int als = 0; als < machine.config().numAls(); ++als) {
    if (rng.chance(0.5)) d.useAls(machine, als);
  }
  // Randomly attempt many connections, keeping only accepted ones.
  const auto& sources = machine.sources();
  for (int i = 0; i < 120; ++i) {
    const Endpoint from = sources[rng.below(sources.size())];
    const auto targets = checker.legalTargets(d, from);
    if (targets.empty()) continue;
    const Endpoint to = targets[rng.below(targets.size())];
    // Only wire FU inputs whose ALS is placed (editor behavior).
    if (to.kind == arch::EndpointKind::kFuInput &&
        d.findAls(machine.fu(to.unit).als) == nullptr) {
      continue;
    }
    if (from.kind == arch::EndpointKind::kFuOutput &&
        d.findAls(machine.fu(from.unit).als) == nullptr) {
      continue;
    }
    ASSERT_TRUE(checker.canConnect(d, from, to));
    d.connect(machine, from, to);
  }
  // The thorough pass may flag op-level problems (nothing is programmed),
  // but never the wiring rules the incremental pass enforced.
  const check::DiagnosticList diags = checker.checkDiagram(d);
  for (const check::Diagnostic& diag : diags.all()) {
    EXPECT_NE(diag.rule, check::Rule::kInputAlreadyDriven) << diag.format();
    EXPECT_NE(diag.rule, check::Rule::kPlaneContention) << diag.format();
    EXPECT_NE(diag.rule, check::Rule::kFanoutLimit) << diag.format();
    EXPECT_NE(diag.rule, check::Rule::kCycle) << diag.format();
    EXPECT_NE(diag.rule, check::Rule::kSelfLoop) << diag.format();
    EXPECT_NE(diag.rule, check::Rule::kEndpointRole) << diag.format();
    EXPECT_NE(diag.rule, check::Rule::kEndpointRange) << diag.format();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerConsistencyTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// 5. Verifier soundness on mutated microcode: no false-clean verdicts
// ---------------------------------------------------------------------------

class VerifierSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(VerifierSoundnessTest, CleanRunsFaultFreeErrorsPredictTheRuntimeFault) {
  const int seed = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 11);
  Machine machine;

  // A well-formed two-FU pipeline with a randomized stream length; every
  // mutation below corrupts its one microword the way bad lowering, a bad
  // cache entry, or a hostile client would.
  const int n = 8 + static_cast<int>(rng.below(120));
  prog::Program p;
  prog::PipelineDiagram& d = p.append("m");
  const arch::AlsId als = machine.config().num_singlets;
  const arch::FuId mul = machine.als(als).fus[0];
  const arch::FuId add = machine.als(als).fus[1];
  d.setFuOp(machine, mul, arch::OpCode::kMul);
  d.connect(machine, Endpoint::planeRead(0), Endpoint::fuInput(mul, 0));
  d.setConstInput(machine, mul, 1, rng.uniform(0.5, 2.0));
  d.setFuOp(machine, add, arch::OpCode::kAdd);
  d.connect(machine, Endpoint::fuOutput(mul), Endpoint::fuInput(add, 0));
  d.connect(machine, Endpoint::planeRead(1), Endpoint::fuInput(add, 1));
  d.connect(machine, Endpoint::fuOutput(add), Endpoint::planeWrite(2));
  for (const Endpoint e : {Endpoint::planeRead(0), Endpoint::planeRead(1),
                           Endpoint::planeWrite(2)}) {
    prog::DmaSpec& dma = d.dmaAt(e);
    dma.base = 0;
    dma.stride = 1;
    dma.count = n;
  }
  d.seq.op = arch::SeqOp::kHalt;

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(p);
  ASSERT_TRUE(gen.ok) << gen.diagnostics.format();
  mc::Executable exe = gen.exe;
  const auto spec = arch::MicrowordSpec::shared(machine);
  common::BitVector& word = exe.words[0];
  switch (seed % 5) {
    case 0:
      break;  // unmutated control: must verify clean and run clean
    case 1:   // read DMA walks past the simulated plane capacity
      spec->set(word, arch::MicrowordSpec::planeField(0, "base"),
                ~std::uint64_t{0});
      break;
    case 2:   // the route feeding the write engine is severed
      spec->set(word,
                arch::MicrowordSpec::switchField(
                    machine.destinationIndex(Endpoint::planeWrite(2))),
                0);
      break;
    case 3:   // write engine programmed for twice the delivered stream
      spec->set(word, arch::MicrowordSpec::planeField(2, "count"),
                static_cast<std::uint64_t>(2 * n));
      break;
    default:  // condition latch armed on a unit that never produces a value
      spec->set(word, "cond.enable", 1);
      spec->set(word, "cond.src_fu", 0);  // singlet 0 is unprogrammed
      spec->set(word, "cond.reg", 1);
      break;
  }

  const auto program = sim::CompiledProgram::compile(machine, exe);
  ASSERT_NE(program, nullptr);
  ASSERT_NE(program->verify, nullptr);
  const sim::VerifyReport& report = *program->verify;

  const auto execute = [&](bool use_compiled) {
    sim::NodeSim::Options options;
    options.use_compiled = use_compiled;
    options.max_cycles_per_instruction = 2000;
    sim::NodeSim node(machine, options);
    node.load(program);
    node.writePlane(0, 0, test::iota(n, 1.0, 0.5));
    node.writePlane(1, 0, test::iota(n, -2.0, 0.25));
    return node.run();
  };
  const sim::RunStats legacy = execute(false);
  const sim::RunStats compiled = execute(true);

  // The engines agree on the fault verdict no matter what the bits say.
  EXPECT_EQ(legacy.error, compiled.error) << report.format();
  EXPECT_EQ(legacy.fault, compiled.fault) << report.format();

  // The batched SoA engine reaches the same verdict in every lane: no
  // mutation may execute false-clean (or fault differently) just because
  // the replica rode a ReplicaBatch instead of a scalar NodeSim.
  sim::NodeSim::Options batch_options;
  batch_options.max_cycles_per_instruction = 2000;
  sim::ReplicaBatch batch(machine, 4, batch_options);
  batch.load(program);
  for (int w = 0; w < batch.lanes(); ++w) {
    batch.writePlane(w, 0, 0, test::iota(static_cast<std::size_t>(n), 1.0, 0.5));
    batch.writePlane(w, 1, 0, test::iota(static_cast<std::size_t>(n), -2.0, 0.25));
  }
  const sim::BatchRunResult batched = batch.run();
  for (const sim::RunStats& lane : batched.runs) {
    EXPECT_EQ(legacy.error, lane.error) << report.format();
    EXPECT_EQ(legacy.fault, lane.fault) << report.format();
    EXPECT_EQ(compiled.error_message, lane.error_message) << report.format();
  }

  // And the SPMD axis: the same mutation replayed through a W=4 NodeBatch
  // phase (a d=2 hypercube whose four nodes ride one SoA group) must agree
  // with a scalar system on the error verdict, message, and per-node stats
  // — across a restartAll phase boundary.
  const auto runSystem = [&](int lanes) {
    sim::HypercubeSystem system(machine, 2,
                                {.node = batch_options, .node_lanes = lanes});
    system.loadAll(program);
    for (int node = 0; node < system.numNodes(); ++node) {
      system.writePlane(node, 0, 0, test::iota(static_cast<std::size_t>(n), 1.0, 0.5));
      system.writePlane(node, 1, 0, test::iota(static_cast<std::size_t>(n), -2.0, 0.25));
    }
    sim::SystemStats stats;
    for (int phase = 0; phase < 2 && !stats.error; ++phase) {
      if (phase > 0) system.restartAll();
      system.runPhase(stats);
    }
    return stats;
  };
  const sim::SystemStats sys_scalar = runSystem(1);
  const sim::SystemStats sys_batched = runSystem(4);
  EXPECT_EQ(sys_scalar.error, sys_batched.error) << report.format();
  EXPECT_EQ(sys_scalar.error_message, sys_batched.error_message);
  EXPECT_EQ(sys_scalar.error, legacy.error) << report.format();
  ASSERT_EQ(sys_scalar.node_stats.size(), sys_batched.node_stats.size());
  for (std::size_t i = 0; i < sys_scalar.node_stats.size(); ++i) {
    EXPECT_EQ(sys_scalar.node_stats[i].total_cycles,
              sys_batched.node_stats[i].total_cycles) << "node " << i;
    EXPECT_EQ(sys_scalar.node_stats[i].total_flops,
              sys_batched.node_stats[i].total_flops) << "node " << i;
    EXPECT_EQ(sys_scalar.node_stats[i].instructions_executed,
              sys_batched.node_stats[i].instructions_executed)
        << "node " << i;
  }

  std::set<sim::FaultKind> predicted;
  for (const sim::VerifyDiagnostic& diag : report.diagnostics) {
    if (diag.severity != check::Severity::kError) continue;
    const sim::FaultKind kind = sim::predictedFault(diag.code);
    if (kind != sim::FaultKind::kNone) predicted.insert(kind);
  }

  if (report.clean()) {
    // No false-clean verdicts: a clean report is a proof of fault-freedom.
    EXPECT_FALSE(legacy.error) << "mutation " << seed % 5 << ": "
                               << legacy.error_message;
    EXPECT_EQ(legacy.fault, sim::FaultKind::kNone);
  }
  if (!predicted.empty()) {
    // Fault-proving errors are proofs too: the run must fault, with one of
    // the predicted kinds.
    EXPECT_TRUE(legacy.error) << report.format();
    EXPECT_EQ(predicted.count(legacy.fault), 1u)
        << "fault " << sim::faultKindName(legacy.fault) << " not predicted:\n"
        << report.format();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierSoundnessTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace nsc
