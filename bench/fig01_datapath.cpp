// F1 — Figure 1: "Simplified diagram of the datapath architecture of the
// Navier-Stokes Computer", regenerated from the machine description, plus
// the architectural inventory the figure annotates.
#include "bench_common.h"
#include "render/datapath.h"

namespace {

void printFigure() {
  nsc::bench::banner("fig01_datapath", "Figure 1 (datapath architecture)");
  nsc::arch::Machine machine;
  std::printf("%s\n", nsc::render::datapathAscii(machine).c_str());
  std::printf("%s\n", machine.describe().c_str());
  const auto& cfg = machine.config();
  std::printf("paper claims vs model:\n");
  std::printf("  functional units / node : paper 32      model %d\n", cfg.numFus());
  std::printf("  memory                  : paper 2 GB    model %s\n",
              nsc::common::bytesHuman(cfg.totalMemoryBytes()).c_str());
  std::printf("  peak MFLOPS / node      : paper 640     model %.0f\n",
              cfg.peakMflopsPerNode());
  std::printf("  64-node system          : paper 40 GFLOPS / 128 GB   model "
              "%.1f GFLOPS / %s\n\n",
              64 * cfg.peakMflopsPerNode() / 1000.0,
              nsc::common::bytesHuman(64 * cfg.totalMemoryBytes()).c_str());
}

void BM_RenderDatapathAscii(benchmark::State& state) {
  nsc::arch::Machine machine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nsc::render::datapathAscii(machine));
  }
}
BENCHMARK(BM_RenderDatapathAscii);

void BM_RenderDatapathSvg(benchmark::State& state) {
  nsc::arch::Machine machine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nsc::render::datapathSvg(machine));
  }
}
BENCHMARK(BM_RenderDatapathSvg);

void BM_BuildMachineModel(benchmark::State& state) {
  for (auto _ : state) {
    nsc::arch::Machine machine;
    benchmark::DoNotOptimize(machine.sources().size());
  }
}
BENCHMARK(BM_BuildMachineModel);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
