// C3 — Section 6 claims: the visual environment "would clearly be more
// convenient and faster to use than hand-written microcode", and "errors
// are caught sooner when they do occur".
//
// Two studies on the Figure-11 program:
//  (a) effort: interactive actions in the editor session vs microcode
//      fields a textual microassembler programmer must write;
//  (b) error injection: mutate the session in architecture-violating ways
//      and record where the environment catches each mutation (edit time,
//      generate time, or escaped).
#include "bench_common.h"
#include "common/rng.h"

namespace {

using namespace nsc;

struct Injection {
  const char* label;
  const char* find;     // line fragment to replace (nullptr = append)
  const char* replace;  // replacement / appended text
};

const Injection kInjections[] = {
    {"op needs missing circuitry (max on fp-only unit)", "setop fu21 add",
     "setop fu21 max"},
    {"integer op on fp-only unit", "setop fu22 add", "setop fu22 iadd"},
    {"second driver on a wired input", nullptr,
     "connect plane2.read fu20.a"},
    {"second stream on a busy memory plane", nullptr,
     "connect plane4.read fu25.b"},  // plane 4 already carries a write
    {"DMA overruns the plane", "dma plane2.read base=209 stride=1 count=382",
     "dma plane2.read base=16777000 stride=1 count=382"},
    {"self-loop through the switch", nullptr, "connect fu20.out fu20.b"},
    {"combinational cycle", nullptr, "connect fu24.out fu23.a"},
    {"shift/delay tap out of range", "sd 1 taps=0,16", "sd 1 taps=0,9999"},
    {"missing DMA parameters", "dma plane3.read base=81 stride=1 count=382",
     "# dma omitted"},
    {"mismatched stream length",
     "dma plane8.read base=145 stride=1 count=382",
     "dma plane8.read base=145 stride=1 count=100"},
    {"operand never wired", "connect sd1.tap1 fu22.b", "# wire omitted"},
    {"condition from an unprogrammed unit", "cond fu8 0", "cond fu9 0"},
    {"branch target outside program", "seq next", "seq jump target=99"},
    {"write longer than the pipeline streams",
     "dma plane9.write base=0 stride=1 count=1",
     "dma plane9.write base=0 stride=1 count=5000"},
};

std::string applyInjection(const std::string& script, const Injection& inj) {
  if (inj.find == nullptr) return script + "\n" + inj.replace + "\n";
  std::string out = script;
  const auto pos = out.find(inj.find);
  if (pos == std::string::npos) return out;
  // Replace the whole line containing the fragment.
  const auto line_start = out.rfind('\n', pos) + 1;
  const auto line_end = out.find('\n', pos);
  out.replace(line_start, line_end - line_start, inj.replace);
  return out;
}

void printClaims() {
  bench::banner("claims_usability",
                "Section 6 usability claims (convenience; errors caught "
                "sooner)");
  const std::string script = nsc::bench::figure11Session();

  // (a) Effort comparison.
  Workbench baseline;
  const ed::SessionResult base = baseline.runSession(script);
  const mc::GenerateResult gen = baseline.editor().generate();
  mc::Generator generator(baseline.machine());
  std::size_t fields = 0;
  for (const auto& word : gen.exe.words) {
    fields += mc::nonZeroFieldCount(generator.spec(), word);
  }
  std::printf("effort, visual vs textual (Figure-11 sweep):\n");
  std::printf("  editor session commands          : %d\n", base.commands);
  std::printf("  microcode fields a textual\n");
  std::printf("  microassembler must hand-write   : %zu (plus %zu-bit words)\n",
              fields, generator.spec().widthBits());
  std::printf("  ratio                            : %.1fx fewer user "
              "decisions\n\n",
              static_cast<double>(fields) / base.commands);

  // (b) Error-injection study.
  int edit_time = 0, generate_time = 0, escaped = 0;
  std::printf("error-injection study (%zu architecture-violating mutations):\n",
              std::size(kInjections));
  for (const Injection& inj : kInjections) {
    Workbench wb;
    const ed::SessionResult session = wb.runSession(applyInjection(script, inj));
    const char* phase;
    if (session.failures > 0) {
      phase = "edit time (refused interactively)";
      ++edit_time;
    } else {
      const mc::GenerateResult g = wb.editor().generate();
      if (!g.ok) {
        phase = "generate time (thorough check)";
        ++generate_time;
      } else {
        phase = "ESCAPED";
        ++escaped;
      }
    }
    std::printf("  %-52s -> %s\n", inj.label, phase);
  }
  std::printf("\ncaught at edit time: %d, at generate time: %d, escaped: %d\n",
              edit_time, generate_time, escaped);
  std::printf("shape check: most violations are refused the moment they are "
              "attempted,\nthe rest at microcode generation — none reach the "
              "machine (paper, Section 4/6).\n\n");
}

void BM_InjectionRoundTrip(benchmark::State& state) {
  const std::string script = nsc::bench::figure11Session();
  const Injection& inj = kInjections[0];
  for (auto _ : state) {
    Workbench wb;
    wb.runSession(applyInjection(script, inj));
    benchmark::DoNotOptimize(wb.editor().generate().ok);
  }
}
BENCHMARK(BM_InjectionRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  printClaims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
