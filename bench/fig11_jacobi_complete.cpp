// F11 — Figure 11: "Completed pipeline diagram for the point Jacobi
// iteration" — the full example end-to-end: diagram, microcode, simulated
// execution with the residual convergence check, verified against the
// bit-exact host mirror.
#include "bench_common.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig11_jacobi_complete", "Figure 11 (completed Jacobi diagram)");
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.tol = 1e-6;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(8, 8, 8);

  // The completed diagram (one sweep instruction).
  prog::Program sweep_only;
  sweep_only.pipelines.push_back(jacobi.program()[0]);
  ed::Editor editor = editorForProgram(machine, sweep_only);
  std::printf("%s\n", renderDiagramAscii(editor).c_str());

  // The session-drawn diagram matches the generated one semantically.
  Workbench wb;
  wb.runSession(bench::figure11Session());
  const bool session_matches =
      wb.editor().doc(0).semantic.connections ==
      jacobi.program()[0].connections;
  std::printf("editor-session diagram wiring == builder wiring: %s\n\n",
              session_matches ? "yes" : "NO");

  // Execute to convergence.
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  std::printf("microcode: %zu instructions x %zu bits\n",
              gen.exe.words.size(), generator.spec().widthBits());
  sim::NodeSim node(machine);
  node.load(gen.exe);
  jacobi.load(node, problem);
  const sim::RunStats run = node.run();
  const std::uint64_t sweeps = cfd::JacobiProgram::sweepsDone(run);

  // Host mirror.
  std::vector<double> u = problem.u0, next;
  double host_res = 0.0;
  std::vector<double> residual_trace;
  for (std::uint64_t s = 0; s < sweeps; ++s) {
    host_res = cfd::linearJacobiSweep(problem, u, next, 1.0);
    u.swap(next);
    if (s < 8 || s + 1 == sweeps) residual_trace.push_back(host_res);
  }
  const std::vector<double> sim_u = jacobi.extract(node, sweeps);

  std::printf("execution: %llu sweeps to residual <= %g (halted=%d)\n",
              static_cast<unsigned long long>(sweeps), options.tol,
              run.halted);
  std::printf("residual trace (first sweeps then last):");
  for (double r : residual_trace) std::printf(" %.3e", r);
  std::printf("\n");
  std::printf("simulated vs host mirror max |delta|: %.3e (must be 0)\n",
              cfd::errorLinf(sim_u, u));
  std::printf("final pipeline residual register: %.6e (host %.6e)\n",
              jacobi.residual(node), host_res);
  std::printf("machine cycles: %llu   flops: %llu\n",
              static_cast<unsigned long long>(run.total_cycles),
              static_cast<unsigned long long>(run.total_flops));
  std::printf("achieved: %.1f MFLOPS of %.0f peak (utilization %.1f%% of all "
              "32 units)\n",
              run.mflops(machine.config().clock_mhz),
              machine.config().peakMflopsPerNode(),
              100.0 * run.fuUtilization());
  std::printf("error vs manufactured solution: %.3e (discretization bound)\n\n",
              cfd::errorLinf(sim_u, problem.exactSolution()));
}

void BM_SimulateOneSweep(benchmark::State& state) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(8, 8, 8);
  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  sim::NodeSim node(machine);
  for (auto _ : state) {
    node.load(gen.exe);
    jacobi.load(node, problem);
    benchmark::DoNotOptimize(node.run().total_cycles);
  }
}
BENCHMARK(BM_SimulateOneSweep);

void BM_HostSweepReference(benchmark::State& state) {
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(8, 8, 8);
  std::vector<double> u = problem.u0, next;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfd::linearJacobiSweep(problem, u, next, 1.0));
  }
}
BENCHMARK(BM_HostSweepReference);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
