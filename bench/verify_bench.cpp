// Static verification cost and adaptive steady-block payoff.
//
// The ProgramVerifier (src/sim/verify.h) runs once per compile, at the
// shared program cache's insert — so its cost is paid exactly once per
// distinct program per process, however many shards, nodes, or replicas run
// the image.  This bench pins two numbers:
//
//   BM_VerifyProgram      the cold cost of that one verification pass on
//                         the Figure-11 Jacobi program;
//   BM_SteadyBlockSweep   what the proven steady-state windows buy at
//                         execution time: the same sweep with the engine
//                         pinned to the legacy fixed 64-cycle blocks
//                         (NodeOptions::steady_block_override = 64) versus
//                         the verifier's adaptive windows (the default).
//                         Both variants are bit-identical in every stat —
//                         test_compiled.cpp enforces it — so the delta is
//                         pure block-bookkeeping overhead.
//
// The printed artifact is the verification report itself: the per-
// instruction verdicts and proven windows for the Figure-11 program, and
// the typed diagnostic for a deliberately hazardous (out-of-bounds DMA)
// program that the service layer would refuse at admission.
#include "bench_common.h"

#include <algorithm>
#include <vector>

#include "cfd/jacobi_program.h"
#include "cfd/poisson.h"
#include "program/program.h"
#include "sim/compiled.h"
#include "sim/hypercube.h"
#include "sim/node.h"
#include "sim/verify.h"

namespace {

using namespace nsc;

struct Workload {
  arch::Machine machine;
  cfd::JacobiProgram jacobi;
  cfd::PoissonProblem problem;
  mc::GenerateResult gen;
  std::shared_ptr<const sim::CompiledProgram> program;

  explicit Workload(cfd::JacobiBuildOptions options)
      : jacobi(machine, options),
        problem(cfd::PoissonProblem::manufactured(
            options.grid.nx, options.grid.ny, options.grid.nz)) {
    mc::Generator generator(machine);
    gen = generator.generate(jacobi.program());
    program = sim::CompiledProgram::compile(machine, gen.exe);
  }
};

cfd::JacobiBuildOptions figure11Options() {
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 6;
  return options;
}

Workload& figure11() {
  static Workload workload(figure11Options());
  return workload;
}

// A program the generator accepts but no node may run: the DMA transfer
// provably walks one word past the simulated plane capacity.
std::shared_ptr<const sim::CompiledProgram> hazardousProgram(
    const arch::Machine& machine) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("oob");
  d.connect(machine, arch::Endpoint::planeRead(0),
            arch::Endpoint::planeWrite(1));
  prog::DmaSpec spec;
  spec.base = 0;
  spec.stride = 1;
  spec.count = machine.config().sim_plane_words + 1;
  d.dmaAt(arch::Endpoint::planeRead(0)) = spec;
  d.dmaAt(arch::Endpoint::planeWrite(1)) = spec;
  d.seq.op = arch::SeqOp::kHalt;
  mc::Generator generator(machine);
  return sim::CompiledProgram::compile(machine, generator.generate(p).exe);
}

void printReport() {
  bench::banner("verify_bench",
                "static verification of lowered programs (admission gate + "
                "proven steady-state windows)");
  Workload& w = figure11();
  const sim::VerifyReport& report = *w.program->verify;
  std::printf("Figure-11 Jacobi program: %zu instructions, %s "
              "(%zu errors, %zu warnings)\n\n",
              w.program->instrs.size(),
              report.clean() ? "verifies clean" : "REFUSED",
              report.errorCount(), report.warningCount());
  std::printf("%-6s %-22s %13s\n", "instr", "name", "steady window");
  for (std::size_t i = 0; i < w.program->instrs.size(); ++i) {
    const std::uint32_t window = w.program->instrs[i].steady_window;
    std::printf("%-6zu %-22s %13u%s\n", i,
                i < w.program->names.size() ? w.program->names[i].c_str()
                                            : "?",
                window, window > sim::kFallbackSteadyBlock
                            ? "  (proven beyond the fixed 64)"
                            : "");
  }

  const auto hazardous = hazardousProgram(w.machine);
  std::printf("\nhazardous program (DMA past the simulated plane):\n  %s\n",
              hazardous->verify->firstError().c_str());
  std::printf("\nshape check: every sweep instruction proves a window "
              "covering its whole stream,\nso the compiled engine crosses "
              "the steady state in one block instead of %u-cycle\nsteps; "
              "the hazardous program is a typed error the service refuses "
              "at admission\n(Reject::kInvalidProgram) before any node sees "
              "it.\n\n",
              sim::kFallbackSteadyBlock);
}

// Cold verification cost: what the cache pays once per distinct program.
void BM_VerifyProgram(benchmark::State& state) {
  Workload& w = figure11();
  const sim::ProgramVerifier verifier(w.machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(*w.program).diagnostics.size());
  }
}
BENCHMARK(BM_VerifyProgram);

std::uint64_t runSweep(Workload& w, std::uint64_t override_block) {
  sim::NodeSim::Options options;
  options.steady_block_override = override_block;
  sim::NodeSim node(w.machine, options);
  node.load(w.program);
  w.jacobi.load(node, w.problem);
  return node.run().total_cycles;
}

// Fixed-64 vs adaptive on the Figure-11 sweep (arg: 64 = legacy pinned,
// 0 = the verifier's proven windows).  Identical simulated cycles; the
// wall-clock delta is the per-block completion/bookkeeping overhead the
// proven windows eliminate.
void BM_SteadyBlockSweep(benchmark::State& state) {
  Workload& w = figure11();
  const auto override_block = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runSweep(w, override_block));
  }
}
BENCHMARK(BM_SteadyBlockSweep)->Arg(64)->Arg(0);

// The same A/B across a scaled multi-node phase: 4 nodes, 16^3 slabs.
void BM_SteadyBlockSystemPhase(benchmark::State& state) {
  const auto override_block = static_cast<std::uint64_t>(state.range(0));
  cfd::JacobiBuildOptions options;
  options.grid = {16, 16, 12};
  options.h = 1.0 / 15.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  Workload w(options);
  sim::NodeSim::Options node_options;
  node_options.steady_block_override = override_block;
  for (auto _ : state) {
    sim::HypercubeSystem system(w.machine, 2, {.node = node_options});
    system.loadAll(w.gen.exe);
    for (int n = 0; n < system.numNodes(); ++n) {
      sim::HypercubeSystem::NodeStore store = system.nodeStore(n);
      w.jacobi.load(store, w.problem);
    }
    sim::SystemStats stats;
    system.runPhase(stats);
    benchmark::DoNotOptimize(stats.compute_makespan_cycles);
  }
}
BENCHMARK(BM_SteadyBlockSystemPhase)
    ->Arg(64)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
