// F3 — Figure 3: "Major components of the visual programming system":
// graphical editor -> checker -> microcode generator (-> simulated NSC).
// Measures each stage on the paper's example program.
#include <chrono>

#include "bench_common.h"

namespace {

using namespace nsc;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void printFigure() {
  bench::banner("fig03_system_pipeline", "Figure 3 (system components)");
  std::printf("User <-> Graphical Editor <-> Checker (knowledge base)\n");
  std::printf("             |\n");
  std::printf("             v semantic data structures\n");
  std::printf("        Microcode Generator -> executable program -> NSC\n\n");

  Workbench bench;
  const auto t0 = Clock::now();
  const ed::SessionResult session = bench.runSession(bench::figure11Session());
  const double t_edit = msSince(t0);

  const auto t1 = Clock::now();
  const check::DiagnosticList diags = bench.editor().checkAll();
  const double t_check = msSince(t1);

  const auto t2 = Clock::now();
  const mc::GenerateResult gen = bench.editor().generate();
  const double t_generate = msSince(t2);

  // Load the Poisson data and run the one-instruction program.
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(8, 8, 8);
  jacobi.load(bench.node(), problem);
  const auto t3 = Clock::now();
  bench.node().load(gen.exe);
  const sim::RunStats run = bench.node().run();
  const double t_simulate = msSince(t3);

  std::printf("stage timings on the Figure-11 program (one sweep, 8^3 grid):\n");
  std::printf("  edit (session replay, %d commands)  : %8.3f ms  (%d refused)\n",
              session.commands, t_edit, session.failures);
  std::printf("  thorough check (%zu diagnostics)     : %8.3f ms\n",
              diags.all().size(), t_check);
  std::printf("  microcode generation (%zu words)     : %8.3f ms  ok=%d\n",
              gen.exe.words.size(), t_generate, gen.ok);
  std::printf("  simulation (%llu machine cycles)   : %8.3f ms\n\n",
              static_cast<unsigned long long>(run.total_cycles), t_simulate);
}

void BM_SessionReplay(benchmark::State& state) {
  const std::string script = bench::figure11Session();
  for (auto _ : state) {
    Workbench bench;
    benchmark::DoNotOptimize(bench.runSession(script).commands);
  }
}
BENCHMARK(BM_SessionReplay);

void BM_ThoroughCheck(benchmark::State& state) {
  Workbench bench;
  bench.runSession(bench::figure11Session());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.editor().checkAll().all().size());
  }
}
BENCHMARK(BM_ThoroughCheck);

void BM_MicrocodeGeneration(benchmark::State& state) {
  Workbench bench;
  bench.runSession(bench::figure11Session());
  const prog::Program program = bench.editor().program();
  mc::Generator generator(bench.machine());
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(program).exe.words.size());
  }
}
BENCHMARK(BM_MicrocodeGeneration);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
