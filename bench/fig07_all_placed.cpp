// F7 — Figure 7: "Display after all ALSs have been positioned" — the
// Jacobi pipeline's units placed, before wiring.
#include "bench_common.h"

namespace {

using namespace nsc;

const char* kPlacementSession = R"(
pipeline "sweep A->B"
place doublet als 4 at 200,120
place doublet als 6 at 200,320
place triplet als 12 at 420,60
place triplet als 13 at 420,300
place triplet als 14 at 420,540
place triplet als 15 at 700,60
)";

void printFigure() {
  bench::banner("fig07_all_placed", "Figure 7 (all ALSs positioned)");
  Workbench bench;
  const ed::SessionResult session = bench.runSession(kPlacementSession);
  std::printf("%s\n", ed::renderWindowAscii(bench.editor()).c_str());
  const auto& stats = bench.editor().stats();
  std::printf("session: %d commands, %d refused\n", session.commands,
              session.failures);
  std::printf("editor actions: %llu attempted, %llu refused, %llu checker "
              "queries\n",
              static_cast<unsigned long long>(stats.actions_attempted),
              static_cast<unsigned long long>(stats.actions_refused),
              static_cast<unsigned long long>(stats.checker_queries));
  std::printf("icons on screen: %zu  (drawing area occupancy)\n\n",
              bench.editor().doc().scene.icons().size());
}

void BM_PlacementSession(benchmark::State& state) {
  for (auto _ : state) {
    Workbench bench;
    benchmark::DoNotOptimize(bench.runSession(kPlacementSession).commands);
  }
}
BENCHMARK(BM_PlacementSession);

void BM_FullFigure11Session(benchmark::State& state) {
  const std::string script = nsc::bench::figure11Session();
  for (auto _ : state) {
    Workbench bench;
    benchmark::DoNotOptimize(bench.runSession(script).commands);
  }
}
BENCHMARK(BM_FullFigure11Session);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
