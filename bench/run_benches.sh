#!/usr/bin/env bash
# Run the claims_* benchmarks and merge their Google Benchmark JSON reports
# into one trajectory file (default: BENCH_seed.json at the repo root).
#
# Usage: run_benches.sh [bench-binary-dir] [output-json] [bench-name...]
#   bench-binary-dir  directory holding the claims_* binaries
#                     (default: build/bench)
#   output-json       merged report path (default: BENCH_seed.json)
#   bench-name...     benchmarks to run; the cmake run_benches target passes
#                     NSC_CLAIMS_BENCHES here so the list has one source of
#                     truth.  Standalone invocations fall back to the default
#                     claims set below.
set -euo pipefail

BIN_DIR="${1:-build/bench}"
OUT="${2:-BENCH_seed.json}"
if [[ $# -gt 2 ]]; then
  CLAIMS=("${@:3}")
else
  CLAIMS=(claims_microword claims_performance claims_subset_ablation claims_usability durable_bench ensemble_throughput service_throughput verify_bench)
fi

if ! command -v jq > /dev/null; then
  echo "error: jq is required to merge benchmark reports — install it first" >&2
  exit 1
fi

if [[ ! -d "${BIN_DIR}" ]]; then
  echo "error: bench binary dir '${BIN_DIR}' not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

for bench in "${CLAIMS[@]}"; do
  bin="${BIN_DIR}/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: missing bench binary '${bin}'" >&2
    exit 1
  fi
  echo ">>> ${bench}"
  # The binaries print their reproduced paper artifact to stdout; the
  # machine-readable timings go to the JSON report file.
  "${bin}" --benchmark_out="${TMP_DIR}/${bench}.json" --benchmark_out_format=json
done

# Merge: {"schema": 1, "benchmarks": {"<name>": <google-benchmark report>}}
jq -n '{schema: 1,
        benchmarks: (reduce inputs as $doc ({};
          . + {($doc.context.executable | split("/") | last): $doc}))}
' "${TMP_DIR}"/*.json > "${OUT}"

echo "wrote ${OUT} ($(jq '.benchmarks | keys | length' "${OUT}") benchmark reports)"
