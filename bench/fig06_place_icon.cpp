// F6 — Figure 6: "Selecting and positioning an icon" — the palette drag
// interaction, measured at mouse-event granularity.
#include "bench_common.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig06_place_icon", "Figure 6 (selecting & positioning)");
  arch::Machine machine;
  ed::Editor editor(machine);
  const ed::Rect draw = editor.layout().drawing;
  editor.beginPaletteDrag(ed::IconKind::kTriplet);
  for (int step = 0; step <= 6; ++step) {
    editor.mouseMove({editor.layout().control_panel.x - step * 110,
                      editor.layout().control_panel.y + 30 + step * 40});
  }
  editor.mouseUp({draw.x + 240, draw.y + 140});
  std::printf("after the drag (icon dropped at 240,140 in the drawing "
              "area):\n\n%s\n", ed::renderWindowAscii(editor).c_str());
  std::printf("message strip: %s\n\n", editor.message().c_str());
}

void BM_PaletteDragPlace(benchmark::State& state) {
  arch::Machine machine;
  for (auto _ : state) {
    ed::Editor editor(machine);
    const ed::Rect draw = editor.layout().drawing;
    editor.beginPaletteDrag(ed::IconKind::kTriplet);
    for (int step = 0; step < 8; ++step) {
      editor.mouseMove({draw.x + 40 * step, draw.y + 20 * step});
    }
    editor.mouseUp({draw.x + 240, draw.y + 140});
    benchmark::DoNotOptimize(editor.doc().scene.icons().size());
  }
}
BENCHMARK(BM_PaletteDragPlace);

void BM_MouseMoveHitTesting(benchmark::State& state) {
  // Cost of one motion event while dragging an icon across a busy scene.
  arch::Machine machine;
  ed::Editor editor(machine);
  const ed::Rect draw = editor.layout().drawing;
  for (int i = 0; i < 8; ++i) {
    editor.placeIcon(ed::IconKind::kDoublet,
                     {draw.x + 30 + (i % 4) * 190, draw.y + 40 + (i / 4) * 220});
  }
  const ed::Icon icon = editor.doc().scene.icons()[0];
  editor.mouseDown({icon.pos.x + 10, icon.pos.y + 10});
  int t = 0;
  for (auto _ : state) {
    editor.mouseMove({draw.x + 50 + (t % 500), draw.y + 60 + (t % 300)});
    ++t;
  }
  editor.mouseUp({draw.x + 50, draw.y + 60});
}
BENCHMARK(BM_MouseMoveHitTesting);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
