// Shared helpers for the figure/claim benches.  Every bench binary prints
// its reproduced artifact (figure or claim table) first, then runs its
// google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "nsc/nsc.h"

namespace nsc::bench {

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================\n");
  std::printf("%s — reproducing %s\n", experiment, paper_artifact);
  std::printf("==============================================================\n");
}

// The editor session that draws the paper's Figure 11 pipeline (one sweep
// of the point-Jacobi update, 8^3 grid) step by step — shared by several
// benches, the examples, and the service tests.  The script itself lives
// in src/nsc/scripts.h (nsc::figure11SessionScript); this alias keeps the
// benches' historical spelling.
inline std::string figure11Session() { return figure11SessionScript(); }

}  // namespace nsc::bench
