#!/usr/bin/env python3
"""Diff a fresh BENCH_<tag>.json against committed baselines.

The repo tracks its performance trajectory as merged Google Benchmark
reports produced by bench/run_benches.sh (BENCH_seed.json from PR 1,
BENCH_exec.json from PR 2, BENCH_nodekernel.json from PR 3, ...).  This
tool prints per-benchmark deltas between one fresh report and one or more
baselines, so a perf PR (or the non-gating CI bench job) can show its
effect in one table.

Usage:
  bench/compare_benches.py NEW.json [BASELINE.json ...]

With no baselines given, compares against BENCH_seed.json and
BENCH_exec.json in the repo root (skipping any that do not exist).
Exit status is always 0 — the report is informational, not a gate;
pass --threshold PCT (alias: --fail-above-pct) to turn regressions
beyond PCT percent into a non-zero exit, so a CI bench job can
optionally gate on it.
"""

import argparse
import json
import math
import os
import sys


def load_rows(path):
    """Returns {benchmark name: (real_time, unit)} from a merged report."""
    with open(path) as fh:
        doc = json.load(fh)
    rows = {}
    suites = doc.get("benchmarks", {})
    if not isinstance(suites, dict):
        raise SystemExit(f"{path}: not a merged run_benches.sh report")
    for suite, report in sorted(suites.items()):
        for row in report.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev) if ever present.
            if row.get("run_type") == "aggregate":
                continue
            name = row.get("name")
            if name is None or "real_time" not in row:
                continue
            rows[f"{suite}/{name}"] = (row["real_time"], row.get("time_unit", "ns"))
    return rows


_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * _UNIT_NS.get(unit, 1.0)


def human(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def short_name(key):
    return key.split("/", 1)[1] if "/" in key else key


def compare(new_path, base_path, fail_above_pct):
    new_rows = load_rows(new_path)
    base_rows = load_rows(base_path)
    common = [k for k in new_rows if k in base_rows]
    print(f"-- {os.path.basename(new_path)} vs {os.path.basename(base_path)} --")
    if not common:
        print("   (no common benchmarks)")
    else:
        print(f"{'benchmark':56s} {'base':>10s} {'new':>10s} {'delta':>8s}  {'speedup':>7s}")
    regressed = False
    for key in common:
        new_ns = to_ns(*new_rows[key])
        base_ns = to_ns(*base_rows[key])
        delta_pct = 100.0 * (new_ns - base_ns) / base_ns if base_ns else 0.0
        speedup = base_ns / new_ns if new_ns else float("inf")
        marker = ""
        if fail_above_pct is not None and delta_pct > fail_above_pct:
            regressed = True
            marker = "  <-- regression"
        print(f"{short_name(key):56s} {human(base_ns):>10s} {human(new_ns):>10s} "
              f"{delta_pct:+7.1f}%  {speedup:6.2f}x{marker}")
    # Geometric mean of the per-row speedups: the one-number summary of the
    # snapshot pair (arithmetic means over-weight the slowest benchmarks).
    ratios = []
    for key in common:
        new_ns = to_ns(*new_rows[key])
        base_ns = to_ns(*base_rows[key])
        if new_ns > 0 and base_ns > 0:
            ratios.append(math.log(base_ns / new_ns))
    if ratios:
        geomean = math.exp(sum(ratios) / len(ratios))
        print(f"{'geomean speedup (' + str(len(ratios)) + ' common rows)':56s} "
              f"{'':>10s} {'':>10s} {'':8s}  {geomean:6.2f}x")
    # One-sided rows are reported, never silently dropped: a benchmark that
    # exists in only one snapshot usually means a bench was added, renamed,
    # or lost from the claims set — exactly what a reviewer needs to see.
    for key in sorted(set(new_rows) - set(base_rows)):
        ns, unit = new_rows[key]
        print(f"{short_name(key):56s} {'--':>10s} {human(to_ns(ns, unit)):>10s} "
              f"{'':8s}  only in {os.path.basename(new_path)}")
    for key in sorted(set(base_rows) - set(new_rows)):
        ns, unit = base_rows[key]
        print(f"{short_name(key):56s} {human(to_ns(ns, unit)):>10s} {'--':>10s} "
              f"{'':8s}  only in {os.path.basename(base_path)}")
    print()
    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new", help="fresh BENCH_<tag>.json")
    parser.add_argument("baselines", nargs="*",
                        help="baseline reports (default: BENCH_seed.json, BENCH_exec.json)")
    parser.add_argument("--threshold", "--fail-above-pct",
                        dest="fail_above_pct", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero if any benchmark regresses more "
                             "than this percent (default: report only)")
    args = parser.parse_args()

    baselines = args.baselines
    if not baselines:
        root = os.path.dirname(os.path.dirname(os.path.abspath(args.new)))
        # Prefer baselines next to the new report; fall back to cwd.
        candidates = []
        for name in ("BENCH_seed.json", "BENCH_exec.json"):
            for base_dir in (os.path.dirname(os.path.abspath(args.new)), root, "."):
                path = os.path.join(base_dir, name)
                if os.path.exists(path):
                    candidates.append(path)
                    break
        baselines = candidates
    if not baselines:
        print("no baselines found; nothing to compare", file=sys.stderr)
        return 0

    regressed = False
    for base in baselines:
        regressed |= compare(args.new, base, args.fail_above_pct)
    return 1 if (regressed and args.fail_above_pct is not None) else 0


if __name__ == "__main__":
    sys.exit(main())
