// C4 — Section 6: "One approach to reducing the complexity is to use a
// simpler architectural model, perhaps a subset of the NSC.  The tradeoff
// here is between performance and programmability."
//
// Ablation: the full model vs the restricted subset (singlet-only ALSs, no
// caches, no shift/delay units) on the same Jacobi workload.
#include <set>

#include "bench_common.h"

namespace {

using namespace nsc;

struct ModelRow {
  const char* label;
  int user_items = 0;     // placements+ops+wires+DMA forms+taps to specify
  int planes_used = 0;
  int fus_used = 0;
  std::uint64_t cycles_per_sweep = 0;
  double mflops = 0;
};

int countUserItems(const prog::Program& program) {
  // Everything the programmer must specify interactively, program-wide:
  // icon placements, op selections, constants, wires, DMA subwindows,
  // shift/delay forms, condition latches, sequencer settings.
  int items = 0;
  for (const prog::PipelineDiagram& d : program.pipelines) {
    items += static_cast<int>(d.als_uses.size());
    for (const prog::AlsUse& use : d.als_uses) {
      for (const prog::FuUse& fu : use.fu) {
        if (!fu.enabled) continue;
        ++items;  // op menu
        items += fu.in_a == arch::InputSelect::kRegisterFile ||
                 fu.in_b == arch::InputSelect::kRegisterFile;
        items += fu.rf_mode == arch::RfMode::kAccum;
      }
    }
    items += static_cast<int>(d.connections.size());
    items += static_cast<int>(d.dma.size());
    items += static_cast<int>(d.sd_uses.size());
    items += d.cond.has_value();
    ++items;  // sequencer
  }
  return items;
}

ModelRow runModel(bool restricted, bool use_compiled = true) {
  const arch::Machine machine(restricted
                                  ? arch::MachineConfig::restrictedSubset()
                                  : arch::MachineConfig{});
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 8;
  options.restricted = restricted;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem = cfd::PoissonProblem::manufactured(8, 8, 8);

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());
  sim::NodeSim::Options node_options;
  node_options.use_compiled = use_compiled;
  sim::NodeSim node(machine, node_options);
  node.load(gen.exe);
  jacobi.load(node, problem);
  const sim::RunStats run = node.run();

  ModelRow row;
  row.label = restricted ? "restricted subset" : "full NSC model";
  row.user_items = countUserItems(jacobi.program());
  std::set<arch::PlaneId> planes;
  std::set<int> fus;
  const prog::PipelineDiagram& sweep = jacobi.program()[0];
  for (const auto& [e, dma] : sweep.dma) planes.insert(e.unit);
  for (const prog::AlsUse& use : sweep.als_uses) {
    for (std::size_t slot = 0; slot < use.fu.size(); ++slot) {
      if (use.fu[slot].enabled) {
        fus.insert(machine.als(use.als).fus[slot]);
      }
    }
  }
  row.planes_used = static_cast<int>(planes.size());
  row.fus_used = static_cast<int>(fus.size());
  row.cycles_per_sweep =
      run.total_cycles / cfd::JacobiProgram::sweepsDone(run);
  row.mflops = run.mflops(machine.config().clock_mhz);
  return row;
}

void printClaims() {
  bench::banner("claims_subset_ablation",
                "Section 6 subset-model tradeoff (programmability vs "
                "performance)");
  std::printf("%-18s %10s %7s %5s %14s %9s\n", "model", "user items",
              "planes", "FUs", "cycles/sweep", "MFLOPS");
  const ModelRow full = runModel(false);
  const ModelRow restricted = runModel(true);
  for (const ModelRow& row : {full, restricted}) {
    std::printf("%-18s %10d %7d %5d %14llu %9.1f\n", row.label,
                row.user_items, row.planes_used, row.fus_used,
                static_cast<unsigned long long>(row.cycles_per_sweep),
                row.mflops);
  }
  std::printf("\nshape check: the restricted model needs %d%% more memory "
              "planes per sweep (array\ncopies replace the shift/delay "
              "units), more user actions over the whole program,\nand has "
              "no plane budget left for the residual convergence check — it "
              "trades\nmachine features for a flatter mental model exactly "
              "as Section 6 anticipates\n(\"some abstraction is possible, "
              "but the performance ramifications are unclear\").\n\n",
              100 * (restricted.planes_used - full.planes_used) /
                  full.planes_used);
}

void BM_FullModelSweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(runModel(false).cycles_per_sweep);
  }
}
BENCHMARK(BM_FullModelSweep);

void BM_RestrictedModelSweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(runModel(true).cycles_per_sweep);
  }
}
BENCHMARK(BM_RestrictedModelSweep);

// Engine A/B: the same workload on the legacy per-cycle interpreter
// (NodeOptions::use_compiled = false).  The ratio against BM_FullModelSweep
// is the compiled engine's speedup, captured in every BENCH_*.json.
void BM_InterpreterModelSweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(runModel(false, false).cycles_per_sweep);
  }
}
BENCHMARK(BM_InterpreterModelSweep);

}  // namespace

int main(int argc, char** argv) {
  printClaims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
