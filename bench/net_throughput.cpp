// Network-edge claim: the framed wire protocol (PROTOCOL.md) adds transport
// without changing the answer.  BM_LoopbackSessionThroughput drives the same
// persistent-session workload as service_throughput's
// BM_SessionThroughput_Persistent — kSessions users × kChunks incremental
// command batches of the Figure-11 Jacobi script — but every request crosses
// a real TCP loopback socket through nsc::net::Server and nsc::Client;
// BM_InProcessSessionBaseline is the identical interaction submitted
// directly, so one report shows the full framing + syscall overhead.  The
// artifact section verifies the bit-identity contract the comparison rests
// on (net::deterministicReplyJson over both transports).
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "client/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/service.h"

namespace {

using namespace nsc;

constexpr int kSessions = 8;
constexpr int kChunks = 8;

// The Figure-11 script cut into kChunks line-balanced command batches —
// the same chunking as bench/service_throughput.cpp so the loopback and
// in-process numbers time the same interaction.
std::vector<std::string> figure11Chunks() {
  const std::string script = figure11SessionScript();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < script.size()) {
    std::size_t end = script.find('\n', start);
    if (end == std::string::npos) end = script.size() - 1;
    lines.push_back(script.substr(start, end - start + 1));
    start = end + 1;
  }
  std::vector<std::string> chunks(kChunks);
  const std::size_t n = lines.size();
  for (int c = 0; c < kChunks; ++c) {
    const std::size_t lo = n * static_cast<std::size_t>(c) / kChunks;
    const std::size_t hi = n * static_cast<std::size_t>(c + 1) / kChunks;
    for (std::size_t i = lo; i < hi; ++i) {
      chunks[static_cast<std::size_t>(c)] += lines[i];
    }
  }
  return chunks;
}

svc::ServiceOptions benchServiceOptions(sim::CompiledProgramCache& cache) {
  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 2 * kSessions * kChunks;
  options.cache = &cache;
  return options;
}

svc::SessionCommand chunkCommand(std::uint64_t session,
                                 const std::vector<std::string>& chunks,
                                 int c) {
  svc::SessionCommand command;
  command.session = session;
  command.script = chunks[static_cast<std::size_t>(c)];
  command.run = (c == kChunks - 1);
  return command;
}

// One session over the socket and the same session in-process; the replies
// must be bit-identical modulo the documented placement/timing fields.
void printArtifact() {
  bench::banner("net_throughput",
                "the wire protocol as a zero-answer-drift transport");
  const std::vector<std::string> chunks = figure11Chunks();

  sim::CompiledProgramCache cache;
  svc::WorkbenchService service(benchServiceOptions(cache));
  net::Server server(service);
  if (!server.start().isOk()) {
    std::printf("loopback server failed to start\n\n");
    return;
  }
  Client client({.host = "127.0.0.1", .port = server.port()});

  auto drive = [&](auto submit) {
    std::vector<svc::ServiceReply> replies;
    replies.push_back(submit(svc::Request{svc::OpenSession{}}));
    const std::uint64_t id = replies.front().stats.session;
    for (int c = 0; c < kChunks; ++c) {
      replies.push_back(submit(svc::Request{chunkCommand(id, chunks, c)}));
    }
    replies.push_back(submit(svc::Request{svc::CloseSession{id}}));
    return replies;
  };
  const std::vector<svc::ServiceReply> wire = drive([&](svc::Request r) {
    auto result = client.call(std::move(r));
    return result.isOk() ? result.value() : svc::ServiceReply{};
  });
  const std::vector<svc::ServiceReply> local = drive(
      [&](svc::Request r) { return service.submit(std::move(r)).get(); });

  int identical = 0;
  for (std::size_t i = 0; i < wire.size() && i < local.size(); ++i) {
    // Distinct session ids are expected (two sessions on one service), and
    // the second drive hits the program cache the first one warmed — mask
    // both; neither is transport drift.
    common::Json a = net::deterministicReplyJson(wire[i]);
    common::Json b = net::deterministicReplyJson(local[i]);
    for (common::Json* j : {&a, &b}) {
      (*j)["stats"].asObject().erase("session");
      (*j)["stats"].asObject().erase("program_cache_hit");
    }
    if (a.dump() == b.dump()) ++identical;
  }
  std::printf("Figure-11 session, %d command batches: %d/%zu replies "
              "bit-identical across loopback TCP vs in-process submit\n"
              "(deterministicReplyJson; session-id counter masked), "
              "final run halted: %s\n\n",
              kChunks, identical, wire.size(),
              !wire[kChunks].run.error && wire[kChunks].run.halted ? "yes"
                                                                   : "no");
  server.stop();
}

// kSessions concurrent clients, each its own connection and persistent
// session, each streaming kChunks command batches (the last generates and
// runs).  Times frame encode/decode + syscalls + the service itself.
void BM_LoopbackSessionThroughput(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::WorkbenchService service(benchServiceOptions(cache));
  net::Server server(service);
  if (!server.start().isOk()) {
    state.SkipWithError("loopback server failed to start");
    return;
  }
  const std::uint16_t port = server.port();
  const std::vector<std::string> chunks = figure11Chunks();
  for (auto _ : state) {
    std::vector<std::thread> users;
    users.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      users.emplace_back([&chunks, port] {
        Client client({.host = "127.0.0.1", .port = port});
        auto opened = client.openSession();
        if (!opened.isOk()) std::abort();
        const std::uint64_t id = opened.value().stats.session;
        for (int c = 0; c < kChunks; ++c) {
          auto reply = client.sessionCommand(chunkCommand(id, chunks, c));
          if (!reply.isOk()) std::abort();
          benchmark::DoNotOptimize(reply.value().run.total_cycles);
        }
        if (!client.closeSession(id).isOk()) std::abort();
      });
    }
    for (std::thread& user : users) user.join();
  }
  state.SetItemsProcessed(state.iterations() * kSessions * kChunks);
  server.stop();
}
BENCHMARK(BM_LoopbackSessionThroughput)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The same interaction submitted straight to the service (mirrors
// service_throughput's BM_SessionThroughput_Persistent) — the baseline the
// loopback number is diffed against.
void BM_InProcessSessionBaseline(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::WorkbenchService service(benchServiceOptions(cache));
  const std::vector<std::string> chunks = figure11Chunks();
  for (auto _ : state) {
    std::vector<std::uint64_t> ids(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      ids[static_cast<std::size_t>(s)] =
          service.submit(svc::OpenSession{}).get().stats.session;
    }
    std::vector<std::future<svc::ServiceReply>> futures;
    futures.reserve(static_cast<std::size_t>(kSessions * kChunks));
    for (int c = 0; c < kChunks; ++c) {
      for (int s = 0; s < kSessions; ++s) {
        futures.push_back(service.submit(
            chunkCommand(ids[static_cast<std::size_t>(s)], chunks, c)));
      }
    }
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().run.total_cycles);
    }
    for (int s = 0; s < kSessions; ++s) {
      service.submit(svc::CloseSession{ids[static_cast<std::size_t>(s)]})
          .get();
    }
  }
  state.SetItemsProcessed(state.iterations() * kSessions * kChunks);
}
BENCHMARK(BM_InProcessSessionBaseline)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
