// F2 — Figure 2: the hand-drawn pipeline diagram for the point Jacobi
// update of the 3-D Poisson equation, here built programmatically from the
// same design and rendered.
#include "bench_common.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig02_jacobi_diagram", "Figure 2 (hand-drawn Jacobi pipeline)");
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);

  prog::Program sweep_only;
  sweep_only.pipelines.push_back(jacobi.program()[0]);
  ed::Editor editor = editorForProgram(machine, sweep_only);
  std::printf("%s\n", renderDiagramAscii(editor).c_str());

  const prog::PipelineDiagram& d = jacobi.program()[0];
  int enabled = 0;
  for (const prog::AlsUse& use : d.als_uses) {
    for (const prog::FuUse& fu : use.fu) enabled += fu.enabled;
  }
  std::printf("diagram statistics (one sweep instruction):\n");
  std::printf("  ALSs placed          : %zu\n", d.als_uses.size());
  std::printf("  functional units     : %d of %d\n", enabled,
              machine.config().numFus());
  std::printf("  switch connections   : %zu\n", d.connections.size());
  std::printf("  DMA streams          : %zu (reads+writes)\n", d.dma.size());
  std::printf("  shift/delay units    : %zu\n", d.sd_uses.size());
  const prog::TimingResult t = prog::analyzeTiming(machine, d);
  std::printf("  pipeline fill depth  : %d cycles\n\n", t.depth);
}

void BM_BuildJacobiProgram(benchmark::State& state) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  for (auto _ : state) {
    cfd::JacobiProgram jacobi(machine, options);
    benchmark::DoNotOptimize(jacobi.program().size());
  }
}
BENCHMARK(BM_BuildJacobiProgram);

void BM_RenderJacobiDiagram(benchmark::State& state) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  prog::Program sweep_only;
  sweep_only.pipelines.push_back(jacobi.program()[0]);
  ed::Editor editor = editorForProgram(machine, sweep_only);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderDiagramAscii(editor));
  }
}
BENCHMARK(BM_RenderJacobiDiagram);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
