// Durability claims: checkpoint/restore latency and the cost of the
// durability hooks on the serving hot path.
//
// BM_CheckpointSerialize times the full versioned serialization of a
// mid-session workbench core (editor replay log + node planes/caches);
// BM_CheckpointWriteRestore adds the verified on-disk round trip (frame +
// FNV-1a checksum, temp-write -> read-back verify -> rename, then a
// restore onto a fresh core).  BM_SessionThroughput_Durable is the PR 7
// BM_SessionThroughput_Persistent workload with evict-to-disk and
// last-good recovery switched ON (fault injection compiled in but inert) —
// diffed against the persistent row it shows what durability costs when
// nothing faults: a last-good snapshot per successful session request.
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/service.h"

namespace {

using namespace nsc;

// A scratch checkpoint directory under the system temp dir, wiped at
// process start so reruns never adopt a previous run's spills.
std::string freshCheckpointDir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

// One context + one mid-session core shared by the checkpoint benches: the
// whole Figure-11 pipeline replayed, program generated and run — the
// largest state a spill has to serialize.  Leaked statics keep both alive
// for the benchmark registry's whole run.
const WorkbenchContext& benchContext() {
  static auto* context = new WorkbenchContext({}, nullptr, nullptr);
  return *context;
}

WorkbenchCore& midSessionCore() {
  static auto* core = [] {
    auto* built = new WorkbenchCore(benchContext());
    built->runSession(figure11SessionScript());
    built->generateAndRun();
    return built;
  }();
  return *core;
}

void printArtifact() {
  bench::banner("durable_bench",
                "durable sessions: checkpoint, evict-to-disk, migrate");
  WorkbenchCore& core = midSessionCore();
  const common::Json state = core.serializeState();
  const std::string payload = state.dump();
  const std::string framed = svc::CheckpointStore::frame(payload);
  std::printf("checkpoint of a completed Figure-11 session: %zu-byte JSON "
              "payload, %zu-byte framed file\n(header: %.*s...)\n",
              payload.size(), framed.size(),
              static_cast<int>(framed.find('\n')), framed.c_str());

  // Restore onto a fresh core and prove bit-identity of the state.
  WorkbenchCore restored(benchContext());
  const common::Status status = restored.restoreState(state);
  std::printf("restore onto a fresh core: %s; re-serialized state %s\n",
              status.isOk() ? "ok" : status.message().c_str(),
              restored.serializeState().dump() == payload
                  ? "bit-identical"
                  : "DIVERGED");

  // Spill + migrate through the service: force-evict via the injector,
  // then watch the next command restore the session from disk.
  exec::FaultInjector injector;  // inert: no plan configured
  svc::ServiceOptions options;
  options.shards = 2;
  options.durability.checkpoint_dir = freshCheckpointDir("nsc_durable_bench");
  options.durability.recover = true;
  options.injector = &injector;
  svc::WorkbenchService service(options);
  const svc::ServiceReply opened =
      service.submit(svc::OpenSession{figure11SessionScript()}).get();
  exec::FaultPlan evict_once;
  evict_once.force_evict = 1.0;
  injector.configure(evict_once);  // next idle sweep spills the session
  svc::SessionCommand command;
  command.session = opened.stats.session;
  command.run = true;
  command.outputs = {svc::PlaneRange{4, 161, 366}};
  svc::ServiceReply reply = service.submit(command).get();
  int spins = 0;
  while (!reply.stats.restored_from_disk && ++spins < 50) {
    reply = service.submit(command).get();  // sweep runs between requests
  }
  injector.configure({});
  std::printf("evict-to-disk + restore: session %llu spilled by a forced "
              "sweep, next command %s (shard %d -> %d), run %s\n\n",
              static_cast<unsigned long long>(opened.stats.session),
              reply.stats.restored_from_disk ? "restored from its checkpoint"
                                             : "was never evicted",
              opened.stats.shard, reply.stats.shard,
              reply.ok() ? "ok" : "FAILED");
  service.submit(svc::CloseSession{opened.stats.session}).get();
}

// Full versioned serialization of a mid-session core, dumped to the JSON
// text a checkpoint file stores — the CPU cost a spill or last-good
// snapshot pays per session.
void BM_CheckpointSerialize(benchmark::State& state) {
  WorkbenchCore& core = midSessionCore();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string payload = core.serializeState().dump();
    bytes = payload.size();
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointSerialize)->Unit(benchmark::kMicrosecond);

// The whole durable round trip: serialize, verified write (temp + read-back
// + rename), verified read, restore onto a fresh core.  This is the price
// of one spill plus one transparent restore.
void BM_CheckpointWriteRestore(benchmark::State& state) {
  WorkbenchCore& core = midSessionCore();
  exec::FaultInjector injector;
  svc::CheckpointStore store(freshCheckpointDir("nsc_durable_bench_rt"),
                             &injector);
  for (auto _ : state) {
    const common::Json snapshot = core.serializeState();
    if (!store.write(7, snapshot).isOk()) state.SkipWithError("write failed");
    const svc::CheckpointStore::ReadResult loaded = store.read(7);
    if (!loaded.ok()) state.SkipWithError("read failed");
    WorkbenchCore fresh(benchContext());
    if (!fresh.restoreState(loaded.payload).isOk()) {
      state.SkipWithError("restore failed");
    }
    benchmark::DoNotOptimize(fresh.checkpoint().scripts_run);
  }
  store.remove(7);
}
BENCHMARK(BM_CheckpointWriteRestore)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Hot-path guard: BM_SessionThroughput_Persistent (service_throughput.cpp)
// with durability ON.  Same sessions, same chunks, same shard count; the
// only difference is checkpoint_dir + recover, so the delta against the
// persistent row isolates the per-request durability hooks (a last-good
// snapshot after each successful session request; no faults, no spills —
// session_ttl_us stays 0).
// ---------------------------------------------------------------------------

constexpr int kSessions = 8;
constexpr int kChunks = 8;

std::vector<std::string> figure11Chunks() {
  const std::string script = figure11SessionScript();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < script.size()) {
    std::size_t end = script.find('\n', start);
    if (end == std::string::npos) end = script.size() - 1;
    lines.push_back(script.substr(start, end - start + 1));
    start = end + 1;
  }
  std::vector<std::string> chunks(kChunks);
  const std::size_t n = lines.size();
  for (int c = 0; c < kChunks; ++c) {
    const std::size_t lo = n * static_cast<std::size_t>(c) / kChunks;
    const std::size_t hi = n * static_cast<std::size_t>(c + 1) / kChunks;
    for (std::size_t i = lo; i < hi; ++i) {
      chunks[static_cast<std::size_t>(c)] += lines[i];
    }
  }
  return chunks;
}

void BM_SessionThroughput_Durable(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 2 * kSessions * kChunks;
  options.cache = &cache;
  options.durability.checkpoint_dir =
      freshCheckpointDir("nsc_durable_bench_tp");
  options.durability.recover = true;
  svc::WorkbenchService service(options);
  const std::vector<std::string> chunks = figure11Chunks();
  for (auto _ : state) {
    std::vector<std::uint64_t> ids(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      ids[static_cast<std::size_t>(s)] =
          service.submit(svc::OpenSession{}).get().stats.session;
    }
    std::vector<std::future<svc::ServiceReply>> futures;
    futures.reserve(static_cast<std::size_t>(kSessions * kChunks));
    for (int c = 0; c < kChunks; ++c) {
      for (int s = 0; s < kSessions; ++s) {
        svc::SessionCommand command;
        command.session = ids[static_cast<std::size_t>(s)];
        command.script = chunks[static_cast<std::size_t>(c)];
        command.run = (c == kChunks - 1);
        futures.push_back(service.submit(std::move(command)));
      }
    }
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().run.total_cycles);
    }
    for (int s = 0; s < kSessions; ++s) {
      service.submit(svc::CloseSession{ids[static_cast<std::size_t>(s)]})
          .get();
    }
  }
  state.SetItemsProcessed(state.iterations() * kSessions * kChunks);
}
BENCHMARK(BM_SessionThroughput_Durable)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
