// F10 — Figure 10: "Programming individual function units" — the op menu
// popped up over an FU, filtered by that unit's circuitry.
#include "bench_common.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig10_fu_ops", "Figure 10 (function-unit op menus)");
  arch::Machine machine;
  ed::Editor editor(machine);

  // Show the menu for each capability class of a triplet.
  const arch::AlsId triplet =
      machine.config().num_singlets + machine.config().num_doublets;
  for (int slot = 0; slot < 3; ++slot) {
    const arch::FuId fu = machine.als(triplet).fus[static_cast<std::size_t>(slot)];
    const auto menu = editor.opMenu(fu);
    std::printf("fu%d (%s) menu [%zu ops]:", fu,
                arch::capMaskName(machine.fu(fu).caps).c_str(), menu.size());
    for (const arch::OpCode op : menu) {
      std::printf(" %s", arch::opInfo(op).name);
    }
    std::printf("\n");
  }

  // Legality matrix: every op against every capability class.
  int legal = 0, total = 0;
  for (const arch::FuInfo& fu : machine.fus()) {
    for (int op = 1; op < static_cast<int>(arch::OpCode::kNumOps); ++op) {
      ++total;
      legal += machine.fuCanExecute(fu.id, static_cast<arch::OpCode>(op));
    }
  }
  std::printf("\nop-legality matrix: %d of %d (FU, op) pairs legal — the "
              "menus hide the other %.0f%%\n\n",
              legal, total, 100.0 * (total - legal) / total);
}

void BM_OpMenuPopulation(benchmark::State& state) {
  arch::Machine machine;
  ed::Editor editor(machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(editor.opMenu(static_cast<arch::FuId>(state.range(0))).size());
  }
}
BENCHMARK(BM_OpMenuPopulation)->Arg(0)->Arg(4)->Arg(31);

void BM_SetFuOp(benchmark::State& state) {
  arch::Machine machine;
  ed::Editor editor(machine);
  const ed::Rect draw = editor.layout().drawing;
  editor.placeIcon(ed::IconKind::kTriplet, {draw.x + 40, draw.y + 40});
  const arch::FuId fu = machine.als(machine.config().num_singlets +
                                    machine.config().num_doublets).fus[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(editor.setFuOp(fu, arch::OpCode::kAdd));
  }
}
BENCHMARK(BM_SetFuOp);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
