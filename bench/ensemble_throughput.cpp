// Ensemble-execution claim: parameter ensembles (same microcode, per-replica
// data) are the natural vector axis of the simulated NSC — every replica's
// token timing is identical, so one SoA ReplicaBatch steps W replicas per
// compiled instruction with a single shape computation and W-wide value
// loops.  BM_EnsembleThroughput sweeps the replica count through the
// batched engine (auto lane width); BM_EnsembleScalar is the per-replica
// scalar baseline the speedup is measured against.  Both paths share one
// compiled image, one exec pool, and one program cache, so the sweep
// isolates the execution engine, not compilation.
#include <memory>

#include "bench_common.h"

namespace {

using namespace nsc;

// The Figure-11 Jacobi sweep as the per-replica workload, compiled once.
struct EnsembleFixture {
  Workbench bench;
  prog::Program program;
  std::shared_ptr<const sim::CompiledProgram> compiled;

  EnsembleFixture() {
    if (!bench.runSession(figure11SessionScript()).clean()) return;
    program = bench.editor().program();
    compiled = bench.core().compileProgram(program).program;
  }
};

EnsembleFixture& fixture() {
  static EnsembleFixture f;
  return f;
}

void printArtifact() {
  bench::banner("ensemble_throughput",
                "SoA batched ensemble execution (W replicas per instruction)");
  EnsembleFixture& f = fixture();
  if (f.compiled == nullptr) {
    std::printf("figure-11 session failed to compile\n");
    return;
  }
  const int replicas = 16;
  EnsembleOptions batched;  // lanes = 0: auto width
  const WorkbenchCore::ReplicaRunOutcome outcome =
      f.bench.core().runReplicas(f.compiled, replicas, batched);
  std::printf("one ensemble: %d Figure-11 replicas, SoA lane width %d "
              "(NSC_ENSEMBLE_LANES overrides), %d batched / %d scalar,\n"
              "%llu cycles per replica, bit-identical to per-replica "
              "scalar execution (see BatchedGolden tests)\n\n",
              replicas, outcome.lanes_used, outcome.replicas_batched,
              outcome.replicas_scalar,
              static_cast<unsigned long long>(
                  outcome.runs.empty() ? 0 : outcome.runs[0].total_cycles));
}

void runEnsembleBench(benchmark::State& state, int lanes) {
  EnsembleFixture& f = fixture();
  if (f.compiled == nullptr) {
    state.SkipWithError("figure-11 session failed to compile");
    return;
  }
  const int replicas = static_cast<int>(state.range(0));
  EnsembleOptions options;
  options.lanes = lanes;
  for (auto _ : state) {
    const WorkbenchCore::ReplicaRunOutcome outcome =
        f.bench.core().runReplicas(f.compiled, replicas, options);
    benchmark::DoNotOptimize(outcome.runs.data());
  }
  state.SetItemsProcessed(state.iterations() * replicas);
}

// Batched SoA engine at the auto lane width (8, or NSC_ENSEMBLE_LANES).
void BM_EnsembleThroughput(benchmark::State& state) {
  runEnsembleBench(state, 0);
}
BENCHMARK(BM_EnsembleThroughput)->Arg(1)->Arg(8)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Scalar per-replica baseline (lanes = 1 forces one NodeSim per replica).
void BM_EnsembleScalar(benchmark::State& state) {
  runEnsembleBench(state, 1);
}
BENCHMARK(BM_EnsembleScalar)->Arg(1)->Arg(8)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
