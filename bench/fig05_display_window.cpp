// F5 — Figure 5: "Display window for the visual environment": message
// strip, control-flow region, drawing area, control panel, at the Sun-3's
// 1152x900 resolution.
#include "bench_common.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig05_display_window", "Figure 5 (display window)");
  arch::Machine machine;
  ed::Editor editor(machine);
  const ed::Rect draw = editor.layout().drawing;
  editor.placeIcon(ed::IconKind::kTriplet, {draw.x + 60, draw.y + 80});
  std::printf("%s\n", ed::renderWindowAscii(editor).c_str());
  std::printf("regions: message strip (top), control-flow (left), drawing "
              "area (center), control panel (right)\n\n");
}

void BM_RenderWindow(benchmark::State& state) {
  arch::Machine machine;
  ed::Editor editor(machine);
  const ed::Rect draw = editor.layout().drawing;
  editor.placeIcon(ed::IconKind::kTriplet, {draw.x + 60, draw.y + 80});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed::renderWindowAscii(editor));
  }
}
BENCHMARK(BM_RenderWindow);

void BM_RenderWindowSvg(benchmark::State& state) {
  arch::Machine machine;
  ed::Editor editor(machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed::renderWindowSvg(editor));
  }
}
BENCHMARK(BM_RenderWindowSvg);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
