// C1 — Section 2 claims: "Projected peak performance ... 640 MFLOPS per
// node.  A 64-node NSC would have a total memory of 128 Gbytes and maximum
// performance of 40 GFLOPS."
//
// Reproduces the scaling table with simulated multi-node Jacobi: each node
// owns a z-slab of the grid; after every program run (two sweeps) the
// hyperspace router exchanges ghost layers between hypercube neighbors.
#include "bench_common.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace {

using namespace nsc;

struct ScalingRow {
  int nodes = 1;
  double peak_gflops = 0;
  double achieved_mflops = 0;
  double comm_fraction = 0;
};

// One simulated multi-node run: 2^dimension nodes, each owning an
// nx * nx * local_nz z-slab of the global grid (8^3 is the seed workload;
// 16^3 and 32^3 are the production shapes from the ROADMAP).
ScalingRow runScale(int dimension, int nx = 8, int local_nz = 10,
                    int node_lanes = 0) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {nx, nx, local_nz + 2};  // owned layers + 2 ghost layers
  options.h = 1.0 / (nx - 1);
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem =
      cfd::PoissonProblem::manufactured(nx, nx, local_nz + 2);

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());

  sim::HypercubeSystem system(machine, dimension, {.node_lanes = node_lanes});
  system.loadAll(gen.exe);
  for (int n = 0; n < system.numNodes(); ++n) {
    sim::HypercubeSystem::NodeStore store = system.nodeStore(n);
    jacobi.load(store, problem);
  }

  const int W = options.grid.W();
  const auto pad = static_cast<std::uint64_t>(jacobi.layout().pad);
  sim::SystemStats stats;
  for (int phase = 0; phase < 3; ++phase) {
    system.runPhase(stats);
    // Ghost exchange: top owned layer -> lower neighbor's high ghost,
    // bottom owned layer -> upper neighbor's low ghost (ring order over
    // hypercube node ids; e-cube routes the hops).
    system.beginExchange();
    for (int n = 0; n < system.numNodes(); ++n) {
      const int up = (n + 1) % system.numNodes();
      const int down = (n + system.numNodes() - 1) % system.numNodes();
      if (system.numNodes() == 1) break;
      const auto top_owned = pad + static_cast<std::uint64_t>(local_nz * W);
      const auto bottom_owned = pad + static_cast<std::uint64_t>(W);
      // The freshest iterate after an even sweep count is the A set; all
      // copies receive the halo.
      for (const arch::PlaneId p : jacobi.layout().u_a) {
        system.sendVector(n, jacobi.layout().u_a[0], top_owned, W, up, p,
                          pad + 0);
        system.sendVector(n, jacobi.layout().u_a[0], bottom_owned, W, down, p,
                          pad + static_cast<std::uint64_t>((local_nz + 1) * W));
      }
    }
    system.endExchange(stats);
    system.restartAll();
  }

  ScalingRow row;
  row.nodes = system.numNodes();
  row.peak_gflops =
      system.numNodes() * machine.config().peakMflopsPerNode() / 1000.0;
  row.achieved_mflops = stats.aggregateMflops(machine.config().clock_mhz);
  row.comm_fraction = stats.makespanCycles() == 0
                          ? 0.0
                          : static_cast<double>(stats.comm_cycles) /
                                static_cast<double>(stats.makespanCycles());
  return row;
}

void printClaims() {
  bench::banner("claims_performance",
                "Section 2 performance claims (640 MFLOPS/node, 40 GFLOPS, "
                "128 GB)");
  arch::Machine machine;
  std::printf("nodes  peak GFLOPS  memory      achieved MFLOPS  comm%%\n");
  for (int dim = 0; dim <= 6; ++dim) {
    const ScalingRow row = runScale(dim);
    std::printf("%5d  %11.2f  %-10s  %15.1f  %5.1f\n", row.nodes,
                row.peak_gflops,
                common::bytesHuman(static_cast<std::uint64_t>(row.nodes) *
                                   machine.config().totalMemoryBytes())
                    .c_str(),
                row.achieved_mflops, 100.0 * row.comm_fraction);
  }
  std::printf("\nshape check: peak scales linearly to ~40 GFLOPS and 128 GB "
              "at 64 nodes (paper's Section 2);\nachieved MFLOPS scales with "
              "node count until communication bites.\n\n");
}

// Seed shapes (8^3 slabs) keep their single-arg names so BENCH_*.json rows
// stay comparable against the committed BENCH_seed.json baseline.  d=6 is
// the paper's 64-node flagship; d=7 (128 nodes) and d=8 (256 nodes)
// exercise the beyond-paper shapes that tests/test_hypercube.cpp pins for
// stats consistency.  Since PR 9 these run the SoA node-batched engine at
// the default lane width; BM_SystemPhaseScalar pins the scalar per-node
// engine on the compute-heavy shapes for an in-snapshot A/B.
void BM_SystemPhase(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runScale(dim).achieved_mflops);
  }
}
BENCHMARK(BM_SystemPhase)->Arg(0)->Arg(2)->Arg(4)->Arg(6)->Arg(7)->Arg(8);

void BM_SystemPhaseScalar(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runScale(dim, 8, 10, /*node_lanes=*/1).achieved_mflops);
  }
}
BENCHMARK(BM_SystemPhaseScalar)->Arg(4)->Arg(6);

// Scaled production shapes from the ROADMAP: 16^3 and 32^3 slabs.
void BM_SystemPhaseScaled(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int nx = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runScale(dim, nx).achieved_mflops);
  }
}
BENCHMARK(BM_SystemPhaseScaled)
    ->Args({2, 16})
    ->Args({4, 16})
    ->Args({2, 32})
    ->Unit(benchmark::kMillisecond);

// Host-side multigrid V-cycles on the shared pool: 17^3 is the seed-scale
// case (3 levels), 33^3 the deeper production case (5 levels).
void BM_MultigridVCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const cfd::PoissonProblem problem =
      cfd::PoissonProblem::manufactured(n, n, n);
  cfd::MultigridOptions options;
  options.pool = &exec::ThreadPool::shared();
  std::vector<double> u = problem.u0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfd::vcycle(problem, u, options));
  }
}
BENCHMARK(BM_MultigridVCycle)->Arg(17)->Arg(33)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Phase-throughput harness benchmarks (the tentpole measurement).
//
// 16 nodes each run a minimal one-instruction program per phase over a
// 16^3-footprint slab, so the timing isolates the per-phase parallel
// harness — exactly what nsc_exec amortizes.  The baseline reproduces the
// seed's runPhase: a fresh std::thread batch spawned and joined for every
// phase at the same parallel width as the pool.
// ---------------------------------------------------------------------------

constexpr int kThroughputThreads = 4;

mc::GenerateResult buildPhaseProgram(const arch::Machine& m,
                                     std::uint64_t words) {
  prog::Program p;
  prog::PipelineDiagram& d = p.append("phase");
  const arch::AlsId als = m.config().num_singlets;
  const arch::FuId mul = m.als(als).fus[0];
  d.setFuOp(m, mul, arch::OpCode::kMul);
  d.connect(m, arch::Endpoint::planeRead(0), arch::Endpoint::fuInput(mul, 0));
  d.setConstInput(m, mul, 1, 3.0);
  d.connect(m, arch::Endpoint::fuOutput(mul), arch::Endpoint::planeWrite(1));
  d.dmaAt(arch::Endpoint::planeRead(0)) = {"", 0, 1, words, 1, 0, 0, false};
  d.dmaAt(arch::Endpoint::planeWrite(1)) = {"", 0, 1, words, 1, 0, 0, false};
  d.seq.op = arch::SeqOp::kHalt;
  mc::Generator g(m);
  return g.generate(p);
}

void BM_PhaseThroughput_Pooled(benchmark::State& state) {
  arch::Machine machine;
  const mc::GenerateResult gen = buildPhaseProgram(machine, 8);
  exec::ThreadPool pool(exec::ExecOptions{kThroughputThreads});
  sim::HypercubeSystem system(machine, 4, {}, &pool);
  system.loadAll(gen.exe);
  sim::SystemStats stats;
  for (auto _ : state) {
    system.runPhase(stats);
    system.restartAll();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseThroughput_Pooled);

void BM_PhaseThroughput_SpawnBaseline(benchmark::State& state) {
  arch::Machine machine;
  const mc::GenerateResult gen = buildPhaseProgram(machine, 8);
  // Scalar mode: the seed-reproduction baseline drives per-node NodeSims
  // from its own spawned threads.
  sim::HypercubeSystem system(machine, 4, {.node_lanes = 1});
  system.loadAll(gen.exe);
  const int n = system.numNodes();
  std::vector<sim::RunStats> results(static_cast<std::size_t>(n));
  for (auto _ : state) {
    // Seed behavior: one thread batch per phase, created and joined inline.
    std::vector<std::thread> threads;
    const std::size_t chunk =
        (static_cast<std::size_t>(n) + kThroughputThreads - 1) /
        kThroughputThreads;
    for (std::size_t begin = 0; begin < static_cast<std::size_t>(n);
         begin += chunk) {
      const std::size_t end =
          std::min(begin + chunk, static_cast<std::size_t>(n));
      threads.emplace_back([&system, &results, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = system.node(static_cast<int>(i)).run();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int i = 0; i < n; ++i) system.node(i).restart();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseThroughput_SpawnBaseline);

}  // namespace

int main(int argc, char** argv) {
  printClaims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
