// C1 — Section 2 claims: "Projected peak performance ... 640 MFLOPS per
// node.  A 64-node NSC would have a total memory of 128 Gbytes and maximum
// performance of 40 GFLOPS."
//
// Reproduces the scaling table with simulated multi-node Jacobi: each node
// owns a z-slab of the grid; after every program run (two sweeps) the
// hyperspace router exchanges ghost layers between hypercube neighbors.
#include "bench_common.h"

namespace {

using namespace nsc;

struct ScalingRow {
  int nodes = 1;
  double peak_gflops = 0;
  double achieved_mflops = 0;
  double comm_fraction = 0;
};

ScalingRow runScale(int dimension) {
  arch::Machine machine;
  const int local_nz = 10;  // owned layers + 2 ghost layers per node
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, local_nz + 2};
  options.h = 1.0 / 7.0;
  options.convergence_mode = false;
  options.fixed_sweeps = 2;
  const cfd::JacobiProgram jacobi(machine, options);
  const cfd::PoissonProblem problem =
      cfd::PoissonProblem::manufactured(8, 8, local_nz + 2);

  mc::Generator generator(machine);
  const mc::GenerateResult gen = generator.generate(jacobi.program());

  sim::HypercubeSystem system(machine, dimension);
  system.loadAll(gen.exe);
  for (int n = 0; n < system.numNodes(); ++n) {
    jacobi.load(system.node(n), problem);
  }

  const int W = options.grid.W();
  const auto pad = static_cast<std::uint64_t>(jacobi.layout().pad);
  sim::SystemStats stats;
  for (int phase = 0; phase < 3; ++phase) {
    system.runPhase(stats);
    // Ghost exchange: top owned layer -> lower neighbor's high ghost,
    // bottom owned layer -> upper neighbor's low ghost (ring order over
    // hypercube node ids; e-cube routes the hops).
    system.beginExchange();
    for (int n = 0; n < system.numNodes(); ++n) {
      const int up = (n + 1) % system.numNodes();
      const int down = (n + system.numNodes() - 1) % system.numNodes();
      if (system.numNodes() == 1) break;
      const auto top_owned = pad + static_cast<std::uint64_t>(local_nz * W);
      const auto bottom_owned = pad + static_cast<std::uint64_t>(W);
      // The freshest iterate after an even sweep count is the A set; all
      // copies receive the halo.
      for (const arch::PlaneId p : jacobi.layout().u_a) {
        system.sendVector(n, jacobi.layout().u_a[0], top_owned, W, up, p,
                          pad + 0);
        system.sendVector(n, jacobi.layout().u_a[0], bottom_owned, W, down, p,
                          pad + static_cast<std::uint64_t>((local_nz + 1) * W));
      }
    }
    system.endExchange(stats);
    for (int n = 0; n < system.numNodes(); ++n) system.node(n).restart();
  }

  ScalingRow row;
  row.nodes = system.numNodes();
  row.peak_gflops =
      system.numNodes() * machine.config().peakMflopsPerNode() / 1000.0;
  row.achieved_mflops = stats.aggregateMflops(machine.config().clock_mhz);
  row.comm_fraction = stats.makespanCycles() == 0
                          ? 0.0
                          : static_cast<double>(stats.comm_cycles) /
                                static_cast<double>(stats.makespanCycles());
  return row;
}

void printClaims() {
  bench::banner("claims_performance",
                "Section 2 performance claims (640 MFLOPS/node, 40 GFLOPS, "
                "128 GB)");
  arch::Machine machine;
  std::printf("nodes  peak GFLOPS  memory      achieved MFLOPS  comm%%\n");
  for (int dim = 0; dim <= 6; ++dim) {
    const ScalingRow row = runScale(dim);
    std::printf("%5d  %11.2f  %-10s  %15.1f  %5.1f\n", row.nodes,
                row.peak_gflops,
                common::bytesHuman(static_cast<std::uint64_t>(row.nodes) *
                                   machine.config().totalMemoryBytes())
                    .c_str(),
                row.achieved_mflops, 100.0 * row.comm_fraction);
  }
  std::printf("\nshape check: peak scales linearly to ~40 GFLOPS and 128 GB "
              "at 64 nodes (paper's Section 2);\nachieved MFLOPS scales with "
              "node count until communication bites.\n\n");
}

void BM_SystemPhase(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runScale(dim).achieved_mflops);
  }
}
BENCHMARK(BM_SystemPhase)->Arg(0)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  printClaims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
