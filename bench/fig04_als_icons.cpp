// F4 — Figure 4: the ALS icons (singlet, doublets, triplet) with their
// "double box" integer-capable units and I/O pads.
#include "bench_common.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig04_als_icons", "Figure 4 (ALS icons)");
  for (const ed::IconKind kind :
       {ed::IconKind::kSinglet, ed::IconKind::kDoublet,
        ed::IconKind::kDoubletBypass, ed::IconKind::kTriplet}) {
    std::printf("--- %s ---\n%s\n", iconKindName(kind),
                ed::renderIconAscii(kind).c_str());
  }
  std::printf("pads: o = I/O pad; inner box = integer/logical circuitry\n\n");
}

void BM_RenderIcon(benchmark::State& state) {
  const auto kind = static_cast<ed::IconKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed::renderIconAscii(kind));
  }
}
BENCHMARK(BM_RenderIcon)->DenseRange(0, 3);

void BM_IconHitTest(benchmark::State& state) {
  arch::Machine machine;
  ed::Editor editor(machine);
  const ed::Rect draw = editor.layout().drawing;
  for (int i = 0; i < 4; ++i) {
    editor.placeIcon(ed::IconKind::kTriplet,
                     {draw.x + 30 + i * 180, draw.y + 40});
  }
  const ed::Icon icon = editor.doc().scene.icons()[2];
  const ed::Point pad = icon.outputPad(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(editor.doc().scene.padAt(pad, machine));
  }
}
BENCHMARK(BM_IconHitTest);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
