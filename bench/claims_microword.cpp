// C2 — Section 3 claim: an NSC instruction "requires a few thousand bits
// of information per instruction, encoded in dozens of separate fields".
#include "bench_common.h"

namespace {

using namespace nsc;

void printClaims() {
  bench::banner("claims_microword", "Section 3 microword-size claim");
  arch::Machine machine;
  arch::MicrowordSpec spec(machine);
  std::printf("microword width: %zu bits  (paper: \"a few thousand bits\")\n",
              spec.widthBits());
  std::printf("named fields:    %zu      (paper: \"dozens of separate "
              "fields\"; per-component groups below)\n",
              spec.fields().size());
  std::printf("\nsection                bits   share\n");
  for (const auto& [section, bits] : spec.sectionBitCounts()) {
    std::printf("%-20s %6zu   %4.1f%%\n", section.c_str(), bits,
                100.0 * static_cast<double>(bits) /
                    static_cast<double>(spec.widthBits()));
  }

  // What one real instruction actually sets (the Figure-11 sweep).
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  mc::Generator generator(machine);
  const auto gen = generator.generate(jacobi.program());
  const std::size_t set_fields =
      mc::nonZeroFieldCount(generator.spec(), gen.exe.words[0]);
  std::printf("\nFigure-11 sweep instruction: %zu fields set by hand-free "
              "generation,\n%zu bits high of %zu — this is what a textual "
              "microassembler programmer would write.\n\n",
              set_fields, gen.exe.words[0].popcount(), spec.widthBits());
}

void BM_EncodeJacobiSweep(benchmark::State& state) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  mc::Generator generator(machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(jacobi.program()).exe.words.size());
  }
}
BENCHMARK(BM_EncodeJacobiSweep);

void BM_FieldSetGet(benchmark::State& state) {
  arch::Machine machine;
  arch::MicrowordSpec spec(machine);
  common::BitVector word = spec.makeWord();
  std::uint64_t i = 0;
  for (auto _ : state) {
    spec.set(word, "fu07.opcode", i & 63);
    benchmark::DoNotOptimize(spec.get(word, "fu07.opcode"));
    ++i;
  }
}
BENCHMARK(BM_FieldSetGet);

void BM_Disassemble(benchmark::State& state) {
  arch::Machine machine;
  cfd::JacobiBuildOptions options;
  options.grid = {8, 8, 8};
  options.h = 1.0 / 7.0;
  const cfd::JacobiProgram jacobi(machine, options);
  mc::Generator generator(machine);
  const auto gen = generator.generate(jacobi.program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mc::disassemble(machine, generator.spec(), gen.exe.words[0]));
  }
}
BENCHMARK(BM_Disassemble);

}  // namespace

int main(int argc, char** argv) {
  printClaims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
