// F8 — Figure 8: "Establishing connections between function units" — the
// rubber-band interaction with live checker validation, plus the menu
// population that "reduces the possibilities for making errors".
#include "bench_common.h"
#include "common/rng.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig08_connections", "Figure 8 (rubber-band connections)");
  Workbench bench;
  bench.runSession(R"(
pipeline "wiring"
place triplet als 12 at 300,120
place triplet als 13 at 650,120
)");
  ed::Editor& editor = bench.editor();
  // Rubber-band fu20.out -> fu23.a with hover feedback.
  const auto p0 = editor.doc().scene.padPosition(
      arch::Endpoint::fuOutput(20), bench.machine());
  const auto p1 = editor.doc().scene.padPosition(
      arch::Endpoint::fuInput(23, 0), bench.machine());
  editor.mouseDown(*p0);
  editor.mouseMove(*p1);
  std::printf("rubber-band from fu20.out hovering fu23.a: legal=%s\n",
              editor.hoverLegal().value_or(false) ? "yes" : "no");
  editor.mouseUp(*p1);
  std::printf("message strip: %s\n\n", editor.message().c_str());

  // Menu population: what the popup offers from a memory-plane pad.
  const auto menu = editor.connectionMenu(arch::Endpoint::planeRead(2));
  std::printf("connection menu from plane2.read offers %zu destinations\n",
              menu.size());

  // Random-attempt study: how many of 1000 random connection attempts the
  // checker refuses at edit time on this diagram.
  common::Rng rng(42);
  int refused = 0;
  const auto& sources = bench.machine().sources();
  const auto& destinations = bench.machine().destinations();
  for (int i = 0; i < 1000; ++i) {
    const arch::Endpoint from = sources[rng.below(sources.size())];
    const arch::Endpoint to = destinations[rng.below(destinations.size())];
    check::Checker checker(bench.machine());
    if (!checker.canConnect(editor.doc().semantic, from, to)) ++refused;
  }
  std::printf("random attempts refused at edit time: %d / 1000 (%.1f%%)\n\n",
              refused, refused / 10.0);
}

void BM_LegalTargetsQuery(benchmark::State& state) {
  Workbench bench;
  bench.runSession(nsc::bench::figure11Session());
  ed::Editor& editor = bench.editor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        editor.connectionMenu(arch::Endpoint::planeRead(11)).size());
  }
}
BENCHMARK(BM_LegalTargetsQuery);

void BM_CanConnectQuery(benchmark::State& state) {
  Workbench bench;
  bench.runSession(nsc::bench::figure11Session());
  check::Checker checker(bench.machine());
  const prog::PipelineDiagram& d = bench.editor().doc().semantic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.canConnect(
        d, arch::Endpoint::planeRead(11), arch::Endpoint::fuInput(5, 0)));
  }
}
BENCHMARK(BM_CanConnectQuery);

void BM_CommitConnection(benchmark::State& state) {
  arch::Machine machine;
  for (auto _ : state) {
    state.PauseTiming();
    ed::Editor editor(machine);
    const ed::Rect draw = editor.layout().drawing;
    editor.placeIcon(ed::IconKind::kDoublet, {draw.x + 40, draw.y + 40});
    const arch::FuId fu = machine.als(machine.config().num_singlets).fus[0];
    state.ResumeTiming();
    benchmark::DoNotOptimize(editor.connect(arch::Endpoint::planeRead(0),
                                            arch::Endpoint::fuInput(fu, 0)));
  }
}
BENCHMARK(BM_CommitConnection);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
