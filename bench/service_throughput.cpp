// Serving-layer claim: the workbench workflow the paper gives one user at a
// Sun-3 can be served to many concurrent sessions.  BM_ServiceThroughput
// drives batches of complete Figure-11 Jacobi sessions (editor replay ->
// microcode generation -> simulated execution) through a WorkbenchService
// and sweeps the shard count; BM_SequentialWorkbench is the single-user
// baseline the speedup is measured against.  All shard counts share one
// exec pool and one compiled-program cache, so the sweep isolates the
// serving architecture, not redundant lowering.
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/service.h"

namespace {

using namespace nsc;

constexpr int kBatch = 32;  // requests per timed batch

svc::GenerateAndRun figure11Request() {
  svc::GenerateAndRun request;
  request.script = figure11SessionScript();
  request.outputs.push_back(svc::PlaneRange{4, 161, 366});
  return request;
}

void printArtifact() {
  bench::banner("service_throughput",
                "the serving layer (sessions as requests, sharded simulators)");
  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 16;
  svc::WorkbenchService service(options);
  std::vector<std::future<svc::ServiceReply>> futures;
  for (int i = 0; i < kBatch; ++i) {
    futures.push_back(service.submit(figure11Request()));
  }
  int ok = 0, cache_hits = 0;
  std::int64_t queue_us = 0;
  for (auto& future : futures) {
    const svc::ServiceReply reply = future.get();
    if (reply.ok()) ++ok;
    if (reply.stats.program_cache_hit) ++cache_hits;
    queue_us += reply.stats.queue_us;
  }
  std::printf("one batch: %d/%d Figure-11 sessions ok across %d shards, "
              "%d compiled-image cache hits,\n"
              "mean admission wait %.1f us, peak queue depth %zu of %zu\n",
              ok, kBatch, service.shards(), cache_hits,
              static_cast<double>(queue_us) / kBatch,
              service.peakQueueDepth(), options.queue_capacity);
  for (int s = 0; s < service.shards(); ++s) {
    const svc::ShardStats stats = service.shardStats(s);
    std::printf("  shard %d: %llu requests, %.1f ms busy\n", s,
                static_cast<unsigned long long>(stats.requests),
                static_cast<double>(stats.busy_us) / 1e3);
  }
  std::printf("\n");
}

// Concurrent sessions through an N-shard service (N = state.range(0)).
void BM_ServiceThroughput(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::ServiceOptions options;
  options.shards = static_cast<int>(state.range(0));
  options.queue_capacity = kBatch;
  options.cache = &cache;
  svc::WorkbenchService service(options);
  const svc::GenerateAndRun request = figure11Request();
  for (auto _ : state) {
    std::vector<std::future<svc::ServiceReply>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) futures.push_back(service.submit(request));
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().run.total_cycles);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The single-user baseline: the same batch served by one Workbench core,
// request after request (what the in-process API did before the service).
void BM_SequentialWorkbench(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  WorkbenchContext context({}, nullptr, &cache);
  WorkbenchCore core(context);
  const svc::GenerateAndRun request = figure11Request();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      core.reset();
      core.runSession(request.script);
      RunOutcome outcome = core.generateAndRun();
      benchmark::DoNotOptimize(outcome.run.total_cycles);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SequentialWorkbench)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
