// Serving-layer claim: the workbench workflow the paper gives one user at a
// Sun-3 can be served to many concurrent sessions.  BM_ServiceThroughput
// drives batches of complete Figure-11 Jacobi sessions (editor replay ->
// microcode generation -> simulated execution) through a WorkbenchService
// and sweeps the shard count; BM_SequentialWorkbench is the single-user
// baseline the speedup is measured against.  All shard counts share one
// exec pool and one compiled-program cache, so the sweep isolates the
// serving architecture, not redundant lowering.
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/service.h"

namespace {

using namespace nsc;

constexpr int kBatch = 32;  // requests per timed batch

svc::GenerateAndRun figure11Request() {
  svc::GenerateAndRun request;
  request.script = figure11SessionScript();
  request.outputs.push_back(svc::PlaneRange{4, 161, 366});
  return request;
}

void printArtifact() {
  bench::banner("service_throughput",
                "the serving layer (sessions as requests, sharded simulators)");
  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 16;
  svc::WorkbenchService service(options);
  std::vector<std::future<svc::ServiceReply>> futures;
  for (int i = 0; i < kBatch; ++i) {
    futures.push_back(service.submit(figure11Request()));
  }
  int ok = 0, cache_hits = 0;
  std::int64_t queue_us = 0;
  for (auto& future : futures) {
    const svc::ServiceReply reply = future.get();
    if (reply.ok()) ++ok;
    if (reply.stats.program_cache_hit) ++cache_hits;
    queue_us += reply.stats.queue_us;
  }
  std::printf("one batch: %d/%d Figure-11 sessions ok across %d shards, "
              "%d compiled-image cache hits,\n"
              "mean admission wait %.1f us, peak queue depth %zu of %zu\n",
              ok, kBatch, service.shards(), cache_hits,
              static_cast<double>(queue_us) / kBatch,
              service.peakQueueDepth(), options.queue_capacity);
  for (int s = 0; s < service.shards(); ++s) {
    const svc::ShardStats stats = service.shardStats(s);
    std::printf("  shard %d: %llu requests, %.1f ms busy\n", s,
                static_cast<unsigned long long>(stats.requests),
                static_cast<double>(stats.busy_us) / 1e3);
  }
  std::printf("\n");
}

// Concurrent sessions through an N-shard service (N = state.range(0)).
void BM_ServiceThroughput(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::ServiceOptions options;
  options.shards = static_cast<int>(state.range(0));
  options.queue_capacity = kBatch;
  options.cache = &cache;
  svc::WorkbenchService service(options);
  const svc::GenerateAndRun request = figure11Request();
  for (auto _ : state) {
    std::vector<std::future<svc::ServiceReply>> futures;
    futures.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) futures.push_back(service.submit(request));
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().run.total_cycles);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Stateful sessions: persistent per-session cores vs per-request reset.
//
// The interactive workload the paper actually describes is a user editing
// one diagram across many commands.  A *stateless* service must replay the
// cumulative script prefix on every command (each request resets the
// shard's core), so command k costs O(k) replay; a *stateful* session
// replays each command batch once against its persistent core.  Both
// benchmarks drive the same interaction — kSessions users each issuing
// kChunks command batches of the Figure-11 script, the last one running
// the generated program — through the same 4-shard service.
// ---------------------------------------------------------------------------

constexpr int kSessions = 8;
constexpr int kChunks = 8;

// The Figure-11 script cut into kChunks line-balanced command batches.
std::vector<std::string> figure11Chunks() {
  const std::string script = figure11SessionScript();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < script.size()) {
    std::size_t end = script.find('\n', start);
    if (end == std::string::npos) end = script.size() - 1;
    lines.push_back(script.substr(start, end - start + 1));
    start = end + 1;
  }
  std::vector<std::string> chunks(kChunks);
  const std::size_t n = lines.size();
  for (int c = 0; c < kChunks; ++c) {
    const std::size_t lo = n * static_cast<std::size_t>(c) / kChunks;
    const std::size_t hi = n * static_cast<std::size_t>(c + 1) / kChunks;
    for (std::size_t i = lo; i < hi; ++i) chunks[static_cast<std::size_t>(c)] += lines[i];
  }
  return chunks;
}

svc::ServiceOptions sessionServiceOptions(sim::CompiledProgramCache& cache) {
  svc::ServiceOptions options;
  options.shards = 4;
  options.queue_capacity = 2 * kSessions * kChunks;
  options.cache = &cache;
  return options;
}

// One user's multi-command session, narrated: shard affinity, warm checker
// reuse, and a deadline shed — the admission-control story in one block.
void printSessionArtifact() {
  sim::CompiledProgramCache cache;
  svc::WorkbenchService service(sessionServiceOptions(cache));
  const std::vector<std::string> chunks = figure11Chunks();
  const svc::ServiceReply opened = service.submit(svc::OpenSession{}).get();
  std::vector<svc::ServiceReply> replies;
  for (int c = 0; c < kChunks; ++c) {
    svc::SessionCommand command;
    command.session = opened.stats.session;
    // Each batch re-validates the diagram on entry and validates on exit:
    // the entry `check` of batch c+1 is answered from the checker session
    // batch c left warm — only possible because the session persists.
    command.script = (c > 0 ? std::string("check\n") : std::string()) +
                     chunks[static_cast<std::size_t>(c)] + "check\n";
    command.run = (c == kChunks - 1);
    replies.push_back(service.submit(std::move(command)).get());
  }
  std::uint64_t warm_hits = 0;
  bool same_shard = true;
  int commands = 0;
  int flagged = 0;
  for (const svc::ServiceReply& reply : replies) {
    warm_hits += reply.stats.checker_session_hits;
    same_shard = same_shard && reply.stats.shard == opened.stats.shard;
    commands += reply.session.commands;
    flagged += reply.session.failures;
  }
  svc::Admission expired;
  expired.deadline_us = -1;
  const svc::ServiceReply shed =
      service.submit(svc::RunEnsemble{figure11SessionScript(), 2}, expired)
          .get();
  std::printf("stateful session %llu: %d commands in %d batches, all on "
              "shard %d (affinity %s),\n"
              "%d mid-edit checks flagged still-incomplete wiring, "
              "%llu checker queries answered from the warm session,\n"
              "final batch ran to halt: %s; expired-deadline ensemble %s\n\n",
              static_cast<unsigned long long>(opened.stats.session), commands,
              kChunks, opened.stats.shard, same_shard ? "held" : "BROKEN",
              flagged, static_cast<unsigned long long>(warm_hits),
              !replies.back().run.error ? "yes" : "no",
              shed.stats.rejected == svc::Reject::kDeadline
                  ? "shed before dispatch"
                  : "NOT shed");
  service.submit(svc::CloseSession{opened.stats.session}).get();
}

// Persistent sessions: open, kChunks incremental SessionCommands (the last
// generates and runs), close.  Affinity keeps each session's editor and
// warm checker session alive across its requests.
void BM_SessionThroughput_Persistent(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::WorkbenchService service(sessionServiceOptions(cache));
  const std::vector<std::string> chunks = figure11Chunks();
  for (auto _ : state) {
    std::vector<std::uint64_t> ids(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      ids[static_cast<std::size_t>(s)] =
          service.submit(svc::OpenSession{}).get().stats.session;
    }
    std::vector<std::future<svc::ServiceReply>> futures;
    futures.reserve(static_cast<std::size_t>(kSessions * kChunks));
    for (int c = 0; c < kChunks; ++c) {
      for (int s = 0; s < kSessions; ++s) {
        svc::SessionCommand command;
        command.session = ids[static_cast<std::size_t>(s)];
        command.script = chunks[static_cast<std::size_t>(c)];
        command.run = (c == kChunks - 1);
        futures.push_back(service.submit(std::move(command)));
      }
    }
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().run.total_cycles);
    }
    for (int s = 0; s < kSessions; ++s) {
      service.submit(svc::CloseSession{ids[static_cast<std::size_t>(s)]})
          .get();
    }
  }
  state.SetItemsProcessed(state.iterations() * kSessions * kChunks);
}
BENCHMARK(BM_SessionThroughput_Persistent)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Per-request reset: the same interaction on the stateless request types —
// every command replays the cumulative prefix from scratch (what PR 4's
// service had to do for interactive traffic).
void BM_SessionThroughput_PerRequestReset(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  svc::WorkbenchService service(sessionServiceOptions(cache));
  const std::vector<std::string> chunks = figure11Chunks();
  std::vector<std::string> prefixes(kChunks);
  std::string prefix;
  for (int c = 0; c < kChunks; ++c) {
    prefix += chunks[static_cast<std::size_t>(c)];
    prefixes[static_cast<std::size_t>(c)] = prefix;
  }
  for (auto _ : state) {
    std::vector<std::future<svc::ServiceReply>> futures;
    futures.reserve(static_cast<std::size_t>(kSessions * kChunks));
    for (int c = 0; c < kChunks; ++c) {
      for (int s = 0; s < kSessions; ++s) {
        if (c == kChunks - 1) {
          futures.push_back(service.submit(
              svc::GenerateAndRun{prefixes[static_cast<std::size_t>(c)],
                                  {}, {}}));
        } else {
          futures.push_back(service.submit(
              svc::SubmitSession{prefixes[static_cast<std::size_t>(c)]}));
        }
      }
    }
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get().run.total_cycles);
    }
  }
  state.SetItemsProcessed(state.iterations() * kSessions * kChunks);
}
BENCHMARK(BM_SessionThroughput_PerRequestReset)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The single-user baseline: the same batch served by one Workbench core,
// request after request (what the in-process API did before the service).
void BM_SequentialWorkbench(benchmark::State& state) {
  sim::CompiledProgramCache cache;
  WorkbenchContext context({}, nullptr, &cache);
  WorkbenchCore core(context);
  const svc::GenerateAndRun request = figure11Request();
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      core.reset();
      core.runSession(request.script);
      RunOutcome outcome = core.generateAndRun();
      benchmark::DoNotOptimize(outcome.run.total_cycles);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_SequentialWorkbench)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printArtifact();
  printSessionArtifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
