// F9 — Figure 9: "Pop-up subwindow for specifying cache connections" —
// the DMA parameter form (plane/cache number, offset, stride) and its
// validation on commit.
#include "bench_common.h"
#include "common/rng.h"

namespace {

using namespace nsc;

void printFigure() {
  bench::banner("fig09_cache_subwindow", "Figure 9 (DMA popup subwindow)");
  std::printf("  +--------------------------------------+\n");
  std::printf("  | cache connection                     |\n");
  std::printf("  |  plane  [3]  0..15                   |\n");
  std::printf("  |  offset [10000]   stride [4]         |\n");
  std::printf("  |  count  [512]     variable [u]       |\n");
  std::printf("  |          (ok)  (cancel)              |\n");
  std::printf("  +--------------------------------------+\n\n");

  arch::Machine machine;
  ed::Editor editor(machine);
  struct Case {
    const char* label;
    arch::Endpoint endpoint;
    prog::DmaSpec spec;
  };
  const Case cases[] = {
      {"plane read, in range", arch::Endpoint::planeRead(3),
       {"u", 10000, 4, 512, 1, 0, 0, false}},
      {"cache read, in range", arch::Endpoint::cacheRead(5),
       {"stage", 0, 1, 256, 1, 0, 0, false}},
      {"plane read, runs off the end", arch::Endpoint::planeRead(3),
       {"u", 16u * 1024 * 1024 - 4, 4, 512, 1, 0, 0, false}},
      {"cache read, bad buffer", arch::Endpoint::cacheRead(5),
       {"stage", 0, 1, 64, 1, 0, 7, false}},
      {"zero-length vector", arch::Endpoint::planeRead(0),
       {"u", 0, 1, 0, 1, 0, 0, false}},
      {"negative stride underrun", arch::Endpoint::planeRead(0),
       {"u", 4, -3, 64, 1, 0, 0, false}},
  };
  std::printf("subwindow commits:\n");
  for (const Case& c : cases) {
    const bool ok = editor.setDma(c.endpoint, c.spec);
    std::printf("  %-32s -> %s%s%s\n", c.label, ok ? "accepted" : "refused (",
                ok ? "" : editor.message().c_str(), ok ? "" : ")");
  }

  // Sweep: fraction of random field combinations refused.
  common::Rng rng(9);
  int refused = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    prog::DmaSpec spec;
    spec.base = rng.below(1u << 25);
    spec.stride = rng.range(-16, 16);
    spec.count = rng.below(1u << 22);
    spec.read_buffer = static_cast<int>(rng.below(3));
    const arch::Endpoint e = rng.chance(0.5)
                                 ? arch::Endpoint::planeRead(static_cast<int>(rng.below(16)))
                                 : arch::Endpoint::cacheRead(static_cast<int>(rng.below(16)));
    if (!editor.setDma(e, spec)) ++refused;
  }
  std::printf("\nrandom field sweeps: %d / %d refused before reaching the "
              "microcode generator\n\n", refused, trials);
}

void BM_DmaValidation(benchmark::State& state) {
  arch::Machine machine;
  check::Checker checker(machine);
  prog::PipelineDiagram d;
  const prog::DmaSpec spec{"u", 10000, 4, 512, 1, 0, 0, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker.checkDma(d, arch::Endpoint::planeRead(3), spec));
  }
}
BENCHMARK(BM_DmaValidation);

void BM_DmaCommit(benchmark::State& state) {
  arch::Machine machine;
  ed::Editor editor(machine);
  const prog::DmaSpec spec{"u", 10000, 4, 512, 1, 0, 0, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(editor.setDma(arch::Endpoint::planeRead(3), spec));
  }
}
BENCHMARK(BM_DmaCommit);

}  // namespace

int main(int argc, char** argv) {
  printFigure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
